"""Sharded multi-worker plan serving: horizontal scale-out of the tier chain.

The batched serving stack (:class:`~repro.core.serving.PlanServer` and its
micro-batching front door) is capped by one interpreter.  This module scales
it *out*: a front door that routes every query to one of ``N`` shard worker
**processes** by hashing the query's LifeFunction
:meth:`~repro.core.life_functions.LifeFunction.fingerprint`, with a
shared-nothing design — each worker owns its mmap'd
:class:`~repro.analysis.tables_precompute.GuidelineTable` views (zero-copy
page sharing), its own :class:`~repro.core.plancache.PlanCache`, and its own
:class:`~repro.core.serving.PlanServer` fallback chain.

Routing invariants (the bit-parity contract):

* **Deterministic and cross-process stable.**  :func:`shard_of` hashes the
  fingerprint through SHA-256 — never Python's salted ``hash()`` — so
  ``fingerprint → shard`` is identical in every process and under any
  ``PYTHONHASHSEED``.
* **Duplicates colocate.**  Identical queries share a fingerprint, hence a
  shard, so :meth:`PlanServer.serve_batch`'s duplicate coalescing (and its
  optimizer→cache source rewrite) behaves exactly as in a single process.
* **Cache keys colocate.**  Plan-cache keys are fingerprint-addressed, so a
  shard's private cache sees precisely the lookup sequence the
  single-process cache would have seen for those keys — cross-batch cache
  warmth evolves identically, keeping a whole *stream* of batches
  bit-identical to the single-process path.
* **Chaos substreams are per shard.**  A :class:`TierChaos` salted with the
  shard index (``TierChaos(rates, seed, shard=s)``) draws the same sequence
  for shard ``s``'s lanes whether they run in a worker process or serially
  in-process (``inprocess=True``), which is what the cross-process chaos
  parity suite asserts.

Transport is a ``multiprocessing`` pipe per worker carrying
**length-prefixed framed payloads**: each message is pickled and wrapped in
a fixed header (magic, version, body length, CRC-32) — see
:func:`encode_frame` / :func:`decode_frame` — so a truncated or corrupted
frame is detected on receipt instead of desynchronizing the stream.

Crash handling reuses the PR-4 resilience machinery: one
:class:`~repro.core.serving.CircuitBreaker` per shard, a bounded restart
budget, and an **in-process fallback chain** (a parent-side
:class:`PlanServer` over the same mmap'd tables) that serves a dead shard's
lanes, so a worker crash degrades throughput monotonically instead of
failing the batch.
"""

from __future__ import annotations

import builtins
import hashlib
import multiprocessing
import os
import pickle
import struct
import threading
import time
import zlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Optional, Sequence

from .. import exceptions as _exceptions
from ..exceptions import (
    PlanServingError,
    ShardProtocolError,
    ShardWorkerError,
    ShardingError,
)
from .plancache import LatencyReservoir, PlanCache
from .serving import CircuitBreaker, PlanServer, ServedPlan, TierChaos

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
    "shard_of",
    "query_fingerprint",
    "shard_of_query",
    "split_batch",
    "ShardConfig",
    "build_shard_server",
    "ShardWorker",
    "ShardedPlanServer",
]


# ----------------------------------------------------------------------
# Shard routing (pure functions — the property-tested surface)
# ----------------------------------------------------------------------


def shard_of(fingerprint: str, n_shards: int) -> int:
    """The shard owning ``fingerprint``, in ``[0, n_shards)``.

    SHA-256 of the fingerprint text, top 8 bytes, mod ``n_shards`` — fully
    deterministic, identical across processes/platforms, and independent of
    ``PYTHONHASHSEED`` (unlike the builtin ``hash()``, which is salted per
    interpreter and would scatter the same query to different shards in
    different processes).
    """
    if n_shards < 1:
        raise ShardingError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.sha256(str(fingerprint).encode()).digest()
    return int.from_bytes(digest[:8], "big") % int(n_shards)


#: Bounded memo of query fingerprints: building a life function per lane per
#: batch just to route it would dominate small-batch dispatch.
_FINGERPRINT_MEMO_MAX = 4096
_fingerprint_memo: dict[tuple[str, str], str] = {}


def query_fingerprint(family: str, param_value: float) -> str:
    """The routing identity of a ``(family, θ)`` query.

    The life function's content address when the query is valid; a
    canonical ``invalid:`` key otherwise, so malformed queries still route
    deterministically (and fail per lane inside their shard, exactly as the
    single-process path fails them).  The overhead ``c`` is deliberately
    absent: the fingerprint addresses the life function, so all overheads of
    one workload family colocate with its cache entries.
    """
    key = (str(family), float(param_value).hex())
    memo = _fingerprint_memo.get(key)
    if memo is not None:
        return memo
    try:
        p = PlanServer._family_life(key[0], float(param_value))
        fingerprint = p.fingerprint()
    except Exception:
        fingerprint = f"invalid:{key[0]}|{key[1]}"
    if len(_fingerprint_memo) >= _FINGERPRINT_MEMO_MAX:
        _fingerprint_memo.clear()
    _fingerprint_memo[key] = fingerprint
    return fingerprint


def shard_of_query(family: str, param_value: float, n_shards: int) -> int:
    """Route one query: :func:`shard_of` over :func:`query_fingerprint`."""
    return shard_of(query_fingerprint(family, param_value), n_shards)


def split_batch(
    families: Sequence[str],
    param_values: Sequence[float],
    n_shards: int,
) -> list[list[int]]:
    """Partition batch lanes by shard, preserving input order within each.

    Returns ``n_shards`` lists of lane indices.  Relative order within a
    shard equals input order, which is what keeps per-shard serving (tier
    passes, chaos draws, duplicate coalescing) aligned with the
    single-process pass over the same lanes.
    """
    if len(families) != len(param_values):
        raise ShardingError(
            f"split_batch needs equally long families/param_values, got "
            f"{len(families)}/{len(param_values)}"
        )
    lanes: list[list[int]] = [[] for _ in range(int(n_shards))]
    for i, (family, value) in enumerate(zip(families, param_values)):
        lanes[shard_of_query(family, value, n_shards)].append(i)
    return lanes


# ----------------------------------------------------------------------
# Framed wire protocol
# ----------------------------------------------------------------------

#: Frame magic: marks the start of every shard protocol payload.
FRAME_MAGIC = b"RSHD"
#: Bump on incompatible changes to the header or payload pickling.
FRAME_VERSION = 1

_HEADER = struct.Struct(">4sBII")  # magic, version, body length, CRC-32


def encode_frame(obj: Any) -> bytes:
    """Frame one message: header (magic, version, length, CRC-32) + pickle."""
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, len(body), zlib.crc32(body)) + body


def decode_frame(data: bytes) -> Any:
    """Validate and unpickle one frame; :class:`ShardProtocolError` if bad."""
    if len(data) < _HEADER.size:
        raise ShardProtocolError(
            f"frame shorter than its {_HEADER.size}-byte header ({len(data)} bytes)"
        )
    magic, version, length, crc = _HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise ShardProtocolError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise ShardProtocolError(
            f"unsupported frame version {version} (speaking {FRAME_VERSION})"
        )
    body = data[_HEADER.size:]
    if len(body) != length:
        raise ShardProtocolError(
            f"frame length mismatch: header says {length}, got {len(body)} bytes"
        )
    if zlib.crc32(body) != crc:
        raise ShardProtocolError("frame checksum mismatch (corrupt payload)")
    return pickle.loads(body)


def send_frame(conn: Any, obj: Any) -> None:
    """Write one framed message to a :mod:`multiprocessing` connection."""
    conn.send_bytes(encode_frame(obj))


def recv_frame(conn: Any, timeout: Optional[float] = None) -> Any:
    """Read one framed message; ``timeout`` bounds the wait (None = block)."""
    if timeout is not None and not conn.poll(timeout):
        raise ShardWorkerError(f"no frame within {timeout:g}s")
    return decode_frame(conn.recv_bytes())


# ----------------------------------------------------------------------
# Per-lane error transport
# ----------------------------------------------------------------------


def _serialize_error(exc: BaseException) -> dict[str, Any]:
    """A picklable, cause-preserving wire form of one per-lane error."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "cause": str(exc.__cause__) if exc.__cause__ is not None else None,
    }


def _rebuild_error(spec: Mapping[str, Any]) -> BaseException:
    """Reconstruct a per-lane error from its wire form.

    The original class is recovered by name from :mod:`repro.exceptions` (or
    builtins, for e.g. ``ValueError`` raised by family constructors); anything
    unrecognized degrades to :class:`PlanServingError` with the original
    message.  Both the in-process and multiprocess execution modes normalize
    errors through this round trip, so per-lane error delivery is identical
    regardless of transport.
    """
    name = str(spec.get("type", "PlanServingError"))
    cls = getattr(_exceptions, name, None)
    if cls is None:
        cls = getattr(builtins, name, None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = PlanServingError
    try:
        err: BaseException = cls(str(spec.get("message", "")))
    except Exception:
        err = PlanServingError(str(spec.get("message", "")))
    cause = spec.get("cause")
    if cause:
        err.__cause__ = PlanServingError(str(cause))
    return err


def _normalize_error(exc: BaseException) -> BaseException:
    """One error-delivery format for every transport (wire round trip)."""
    return _rebuild_error(_serialize_error(exc))


# ----------------------------------------------------------------------
# Worker-side serving stack
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardConfig:
    """Everything a shard worker needs to build its serving stack (picklable)."""

    shard: int
    n_shards: int
    #: Directory holding the precomputed guideline tables (mmap'd read-only
    #: by every worker — zero-copy page sharing).  ``None`` disables the
    #: table tier; the chain still serves via cache/optimizer/guideline.
    table_dir: Optional[str] = None
    mmap_tables: bool = True
    #: Per-tier chaos rates; the worker salts its streams with ``shard``.
    chaos_rates: Optional[dict[str, float]] = None
    chaos_seed: int = 0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    cache_maxsize: int = 1024


def build_shard_server(config: ShardConfig) -> PlanServer:
    """One shard's shared-nothing serving stack.

    A memory-only :class:`PlanCache` (never the disk tier — shards must not
    couple through the filesystem), the table server over the shared mmap'd
    table directory, and a per-shard-salted :class:`TierChaos` when chaos is
    configured.  The single-process parity reference builds the *same* stack
    (minus the shard salt) so the comparison is apples to apples.
    """
    cache = PlanCache(maxsize=config.cache_maxsize)
    table_server = None
    if config.table_dir is not None:
        from ..analysis.tables_precompute import TableServer  # deferred: analysis imports core

        table_server = TableServer(
            cache_dir=config.table_dir, cache=cache, mmap_tables=config.mmap_tables
        )
    chaos = None
    if config.chaos_rates:
        chaos = TierChaos(config.chaos_rates, seed=config.chaos_seed, shard=config.shard)
    return PlanServer(
        table_server=table_server,
        cache=cache,
        breaker_threshold=config.breaker_threshold,
        breaker_cooldown=config.breaker_cooldown,
        chaos=chaos,
    )


def _worker_main(conn: Any, config: ShardConfig) -> None:
    """Shard worker loop: read framed requests, serve, reply framed results.

    Runs until the pipe closes, a ``shutdown`` frame arrives, or a ``crash``
    frame (the chaos suite's deterministic kill switch) calls ``os._exit``.
    A request that raises is answered with a ``failure`` frame — the worker
    never dies on a bad batch.
    """
    server = build_shard_server(config)
    batches = 0
    while True:
        try:
            msg = recv_frame(conn)
        except (EOFError, OSError, ShardProtocolError, ShardWorkerError):
            break  # parent went away or the stream is unrecoverable
        op = msg.get("op") if isinstance(msg, dict) else None
        reply_id = msg.get("id") if isinstance(msg, dict) else None
        try:
            if op == "shutdown":
                send_frame(conn, {"op": "bye", "id": reply_id, "shard": config.shard})
                break
            if op == "ping":
                send_frame(
                    conn,
                    {"op": "pong", "id": reply_id, "shard": config.shard,
                     "pid": os.getpid()},
                )
                continue
            if op == "crash":
                os._exit(13)  # deterministic mid-run death for the chaos suite
            if op == "stats":
                stats = server.stats_dict()
                stats.update(shard=config.shard, pid=os.getpid(), batches=batches)
                send_frame(conn, {"op": "stats", "id": reply_id, "stats": stats})
                continue
            if op == "serve":
                try:
                    plans, errors = server._serve_batch_impl(
                        msg["families"], msg["cs"], msg["param_values"]
                    )
                    reply: dict[str, Any] = {
                        "op": "result", "id": reply_id, "plans": plans,
                        "errors": {int(i): _serialize_error(e)
                                   for i, e in errors.items()},
                    }
                except Exception as exc:  # batch-level failure: report, survive
                    reply = {"op": "failure", "id": reply_id,
                             "error": _serialize_error(exc)}
                batches += 1
                send_frame(conn, reply)
                continue
            send_frame(
                conn,
                {"op": "failure", "id": reply_id,
                 "error": {"type": "ShardProtocolError",
                           "message": f"unknown op {op!r}", "cause": None}},
            )
        except (BrokenPipeError, OSError):
            break


# ----------------------------------------------------------------------
# Parent-side worker handle
# ----------------------------------------------------------------------


class ShardWorker:
    """Parent-side handle for one shard process: pipe, lifecycle, requests."""

    def __init__(self, config: ShardConfig, ctx: Any = None) -> None:
        self.config = config
        self._ctx = ctx if ctx is not None else multiprocessing.get_context()
        self._next_id = 0
        self.process: Optional[Any] = None
        self._conn: Optional[Any] = None
        self.spawn()

    # -- lifecycle ------------------------------------------------------

    def spawn(self) -> None:
        """Start (or re-start) the worker process over a fresh pipe."""
        self.discard()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.config),
            name=f"repro-shard-{self.config.shard}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the parent's copy; the worker holds its own
        self._conn = parent_conn

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker (chaos tests); the handle stays restartable."""
        if self.process is not None:
            self.process.kill()
            self.process.join(timeout=5.0)

    def discard(self) -> None:
        """Drop the current process/pipe without the shutdown handshake."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5.0)
            self.process = None

    def close(self, grace: float = 2.0) -> None:
        """Polite shutdown: ask, wait ``grace`` seconds, then terminate."""
        if self.process is not None and self.process.is_alive() and self._conn is not None:
            try:
                send_frame(self._conn, {"op": "shutdown", "id": self._take_id()})
                self.process.join(timeout=grace)
            except (OSError, ValueError):
                pass
        self.discard()

    # -- requests -------------------------------------------------------

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def request(self, msg: dict[str, Any], timeout: Optional[float]) -> dict[str, Any]:
        """One framed round trip; :class:`ShardWorkerError` on any failure."""
        shard = self.config.shard
        if self._conn is None or self.process is None:
            raise ShardWorkerError(f"shard {shard} has no live worker", shard)
        payload = dict(msg)
        payload["id"] = self._take_id()
        try:
            send_frame(self._conn, payload)
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise ShardWorkerError(
                f"shard {shard} pipe write failed: {exc}", shard
            ) from exc
        try:
            reply = recv_frame(self._conn, timeout=timeout)
        except ShardWorkerError as exc:
            raise ShardWorkerError(
                f"shard {shard} timed out after {timeout:g}s", shard
            ) from exc
        except (EOFError, OSError) as exc:
            raise ShardWorkerError(
                f"shard {shard} died (pipe closed mid-request)", shard
            ) from exc
        except ShardProtocolError as exc:
            raise ShardWorkerError(
                f"shard {shard} protocol violation: {exc}", shard
            ) from exc
        if not isinstance(reply, dict) or reply.get("id") != payload["id"]:
            raise ShardWorkerError(
                f"shard {shard} answered out of sequence", shard
            )
        if reply.get("op") == "failure":
            cause = _rebuild_error(reply.get("error", {}))
            raise ShardWorkerError(
                f"shard {shard} request failed: {cause}", shard
            ) from cause
        return reply

    def ping(self, timeout: Optional[float] = 30.0) -> dict[str, Any]:
        """Liveness handshake; returns the worker's ``pong`` frame."""
        return self.request({"op": "ping"}, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "dead"
        return f"ShardWorker(shard={self.config.shard}, {state})"


# ----------------------------------------------------------------------
# The front door
# ----------------------------------------------------------------------


class ShardedPlanServer:
    """Serve query batches across ``workers`` shard processes.

    Parameters
    ----------
    workers:
        Number of shards.  Each owns a worker process (or, with
        ``inprocess=True``, a worker-equivalent in-process serving stack —
        the differential reference for the cross-process parity suite).
    table_dir:
        Directory of precomputed guideline tables, mmap'd read-only by every
        shard (and by the parent's fallback chain).  ``None`` serves without
        the table tier.
    chaos_rates / chaos_seed:
        Optional per-tier fault rates; each shard draws from its own
        ``(seed, tier, shard)`` substream (see :class:`TierChaos`).
    request_timeout:
        Per-request bound on waiting for a worker reply.  A timeout counts
        as a worker failure: breaker, restart budget, then fallback — no
        hung batches.
    max_restarts:
        Total restarts allowed per shard before its lanes degrade
        permanently to the fallback chain.
    breaker_threshold / breaker_cooldown / clock:
        Per-shard circuit breaker configuration (PR-4 machinery; ``clock``
        injectable for deterministic tests).
    mp_method:
        ``multiprocessing`` start method (``None`` = platform default).
    inprocess:
        Serve every shard serially in this process instead of spawning
        workers.  Same sharded decomposition, same per-shard stacks and
        chaos substreams, no IPC — the multiprocess path must match it bit
        for bit.

    Failures inside a worker request (death, timeout, protocol violation)
    never fail the batch: the shard's lanes are re-served by the parent's
    in-process fallback chain and the event is visible in
    :meth:`stats_dict` (``restarts``, ``fallback_lanes``, breaker states).
    """

    def __init__(
        self,
        workers: int,
        table_dir: Optional[str] = None,
        chaos_rates: Optional[Mapping[str, float]] = None,
        chaos_seed: int = 0,
        request_timeout: float = 60.0,
        max_restarts: int = 2,
        breaker_threshold: int = 2,
        breaker_cooldown: float = 5.0,
        clock: Optional[Callable[[], float]] = None,
        mp_method: Optional[str] = None,
        mmap_tables: bool = True,
        inprocess: bool = False,
        cache_maxsize: int = 1024,
    ) -> None:
        if workers < 1:
            raise ShardingError(f"workers must be >= 1, got {workers}")
        if request_timeout <= 0:
            raise ShardingError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        if max_restarts < 0:
            raise ShardingError(f"max_restarts must be >= 0, got {max_restarts}")
        self.n_shards = int(workers)
        self.request_timeout = float(request_timeout)
        self.max_restarts = int(max_restarts)
        self.inprocess = bool(inprocess)
        self._configs = [
            ShardConfig(
                shard=s,
                n_shards=self.n_shards,
                table_dir=str(table_dir) if table_dir is not None else None,
                mmap_tables=bool(mmap_tables),
                chaos_rates=dict(chaos_rates) if chaos_rates else None,
                chaos_seed=int(chaos_seed),
                cache_maxsize=int(cache_maxsize),
            )
            for s in range(self.n_shards)
        ]
        self._lock = threading.RLock()
        self._closed = False
        self.breakers = [
            CircuitBreaker(breaker_threshold, breaker_cooldown, clock)
            for _ in range(self.n_shards)
        ]
        #: The parent-side degradation chain: same tables, no chaos.  Lanes
        #: land here only when their shard is down past its restart budget
        #: (or mid-cooldown), so a dead worker costs latency, not answers.
        self.fallback = build_shard_server(
            replace(self._configs[0], shard=-1, chaos_rates=None)
        )
        self._shards: Optional[list[PlanServer]] = None
        self._workers: Optional[list[ShardWorker]] = None
        if self.inprocess:
            self._shards = [build_shard_server(cfg) for cfg in self._configs]
        else:
            ctx = multiprocessing.get_context(mp_method)
            self._workers = [ShardWorker(cfg, ctx) for cfg in self._configs]
        # Counters (parent side; per-worker tier stats via worker_stats()).
        self.served = 0  #: lanes answered (worker or fallback)
        self.exhausted = 0  #: lanes for which every tier failed
        self.fallback_lanes = 0  #: lanes served by the parent fallback chain
        self.restarts = 0  #: worker restarts performed
        self.worker_failures = 0  #: failed worker requests (death/timeout)
        self.batches = 0  #: serve_batch calls dispatched
        self.latency = LatencyReservoir(seed=3)  #: per-lane serve latency

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def serve_batch(
        self,
        families: Sequence[str],
        cs: Sequence[float],
        param_values: Sequence[float],
    ) -> list[ServedPlan]:
        """Serve a batch across the shards; raises if **any** lane failed.

        Mirrors :meth:`PlanServer.serve_batch`: the aggregate
        :class:`PlanServingError` chains the first failing lane's error.
        Use :meth:`try_serve_batch` for per-lane error delivery.
        """
        plans, errors = self.try_serve_batch(families, cs, param_values)
        if errors:
            first = min(errors)
            raise PlanServingError(
                f"{len(errors)} of {len(families)} sharded queries failed — "
                f"invalid or exhausted every serving tier (first failure at "
                f"index {first})"
            ) from errors[first]
        return [plan for plan in plans if plan is not None]

    def try_serve_batch(
        self,
        families: Sequence[str],
        cs: Sequence[float],
        param_values: Sequence[float],
    ) -> tuple[list[Optional[ServedPlan]], dict[int, BaseException]]:
        """The sharded serve: per-lane outcomes in input order, nothing raised.

        Returns ``(plans, errors)`` shaped exactly like
        :meth:`PlanServer._serve_batch_impl`: ``plans[i]`` is lane ``i``'s
        plan (``None`` iff ``i in errors``).  Errors are normalized through
        the wire format in *both* execution modes, so delivery is identical
        whether a lane was served in-process, in a worker, or by fallback.
        """
        start = time.perf_counter()
        fams = [str(f) for f in families]
        n = len(fams)
        cs_list = [float(c) for c in cs]
        vs_list = [float(v) for v in param_values]
        if len(cs_list) != n or len(vs_list) != n:
            raise PlanServingError(
                f"serve_batch needs equally long families/cs/param_values, "
                f"got {n}/{len(cs_list)}/{len(vs_list)}"
            )
        if n == 0:
            return [], {}
        with self._lock:
            if self._closed:
                raise ShardingError("cannot serve through a closed ShardedPlanServer")
            self.batches += 1
            lanes_by_shard = split_batch(fams, vs_list, self.n_shards)
            plans: list[Optional[ServedPlan]] = [None] * n
            errors: dict[int, BaseException] = {}
            if self.inprocess:
                for shard, lanes in enumerate(lanes_by_shard):
                    if not lanes:
                        continue
                    sub = self._sub_batch(lanes, fams, cs_list, vs_list)
                    assert self._shards is not None
                    sub_plans, sub_errors = self._shards[shard]._serve_batch_impl(*sub)
                    self._scatter(
                        lanes, sub_plans,
                        {i: _normalize_error(e) for i, e in sub_errors.items()},
                        plans, errors,
                    )
            else:
                self._serve_remote(lanes_by_shard, fams, cs_list, vs_list, plans, errors)
            self.served += n - len(errors)
            self.exhausted += len(errors)
            elapsed = time.perf_counter() - start
            for _ in range(n):
                self.latency.add(elapsed / n)
            return plans, errors

    def close(self) -> None:
        """Shut every worker down (idempotent); the server rejects new serves."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._workers is not None:
                for worker in self._workers:
                    worker.close()

    def __enter__(self) -> "ShardedPlanServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- observability --------------------------------------------------

    def stats_dict(self) -> dict[str, Any]:
        """Front-door counters + per-shard breaker states, JSON-ready."""
        return {
            "workers": self.n_shards,
            "mode": "inprocess" if self.inprocess else "multiprocess",
            "served": self.served,
            "exhausted": self.exhausted,
            "fallback_lanes": self.fallback_lanes,
            "restarts": self.restarts,
            "worker_failures": self.worker_failures,
            "batches": self.batches,
            "latency": self.latency.as_dict(),
            "breakers": [b.as_dict() for b in self.breakers],
            "alive": [w.alive for w in self._workers] if self._workers else None,
        }

    def worker_stats(self, timeout: Optional[float] = 10.0) -> list[Optional[dict]]:
        """Each shard's own serving stats (``None`` for unreachable workers)."""
        out: list[Optional[dict]] = []
        if self.inprocess:
            assert self._shards is not None
            for shard, server in enumerate(self._shards):
                stats = server.stats_dict()
                stats.update(shard=shard, pid=os.getpid())
                out.append(stats)
            return out
        assert self._workers is not None
        for worker in self._workers:
            try:
                out.append(worker.request({"op": "stats"}, timeout=timeout)["stats"])
            except (ShardWorkerError, ShardProtocolError):
                out.append(None)
        return out

    def ping(self, timeout: Optional[float] = 30.0) -> list[dict[str, Any]]:
        """Handshake every worker (raises on an unreachable shard)."""
        if self.inprocess:
            return [{"op": "pong", "shard": s, "pid": os.getpid()}
                    for s in range(self.n_shards)]
        assert self._workers is not None
        return [w.ping(timeout=timeout) for w in self._workers]

    def kill_worker(self, shard: int) -> None:
        """SIGKILL one shard's process (the chaos suite's entry point)."""
        if self._workers is None:
            raise ShardingError("kill_worker needs multiprocess mode")
        self._workers[shard].kill()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _sub_batch(
        lanes: list[int], fams: list[str], cs: list[float], vs: list[float]
    ) -> tuple[list[str], list[float], list[float]]:
        return ([fams[i] for i in lanes], [cs[i] for i in lanes],
                [vs[i] for i in lanes])

    def _scatter(
        self,
        lanes: list[int],
        sub_plans: list[Optional[ServedPlan]],
        sub_errors: Mapping[int, BaseException],
        plans: list[Optional[ServedPlan]],
        errors: dict[int, BaseException],
    ) -> None:
        """Fold one shard's sub-batch outcome back into input-order lanes."""
        for j, lane in enumerate(lanes):
            if j in sub_errors:
                errors[lane] = sub_errors[j]
            else:
                plans[lane] = sub_plans[j]

    def _serve_remote(
        self,
        lanes_by_shard: list[list[int]],
        fams: list[str],
        cs: list[float],
        vs: list[float],
        plans: list[Optional[ServedPlan]],
        errors: dict[int, BaseException],
    ) -> None:
        """Dispatch sub-batches to the workers: send all, then collect.

        Sending every shard's request before waiting on any reply lets the
        workers serve concurrently; collection order (shard 0..N-1) does not
        affect results, only who is waited on first.
        """
        assert self._workers is not None
        sent: list[tuple[int, dict[str, Any]]] = []
        degraded: list[int] = []
        for shard, lanes in enumerate(lanes_by_shard):
            if not lanes:
                continue
            breaker = self.breakers[shard]
            if not breaker.allow():
                degraded.append(shard)
                continue
            worker = self._workers[shard]
            if not worker.alive and not self._try_restart(shard):
                self.worker_failures += 1
                breaker.record_failure()
                degraded.append(shard)
                continue
            msg = {
                "op": "serve",
                **dict(zip(("families", "cs", "param_values"),
                           self._sub_batch(lanes, fams, cs, vs))),
            }
            payload = dict(msg)
            payload["id"] = self._workers[shard]._take_id()
            try:
                send_frame(self._workers[shard]._conn, payload)
            except (OSError, ValueError, BrokenPipeError):
                self.worker_failures += 1
                breaker.record_failure()
                if self._retry_shard(shard, msg, lanes, fams, cs, vs, plans, errors):
                    continue
                degraded.append(shard)
                continue
            sent.append((shard, payload))

        for shard, payload in sent:
            lanes = lanes_by_shard[shard]
            worker = self._workers[shard]
            breaker = self.breakers[shard]
            try:
                reply = recv_frame(worker._conn, timeout=self.request_timeout)
                if (not isinstance(reply, dict)
                        or reply.get("id") != payload["id"]
                        or reply.get("op") != "result"):
                    raise ShardWorkerError(
                        f"shard {shard} answered out of protocol", shard
                    )
            except (ShardWorkerError, ShardProtocolError, EOFError, OSError):
                self.worker_failures += 1
                breaker.record_failure()
                msg = {k: payload[k] for k in ("op", "families", "cs", "param_values")}
                if self._retry_shard(shard, msg, lanes, fams, cs, vs, plans, errors):
                    continue
                degraded.append(shard)
                continue
            breaker.record_success()
            self._scatter(
                lanes, reply["plans"],
                {int(i): _rebuild_error(e) for i, e in reply["errors"].items()},
                plans, errors,
            )

        for shard in degraded:
            self._serve_fallback(lanes_by_shard[shard], fams, cs, vs, plans, errors)

    def _retry_shard(
        self,
        shard: int,
        msg: dict[str, Any],
        lanes: list[int],
        fams: list[str],
        cs: list[float],
        vs: list[float],
        plans: list[Optional[ServedPlan]],
        errors: dict[int, BaseException],
    ) -> bool:
        """One restart-and-retry after a failed request; True when it served.

        The slow path: the shard already failed once this batch, so the
        retry runs synchronously (restart, resend, wait).  A second failure
        re-trips the breaker and the caller degrades the lanes to fallback.
        """
        assert self._workers is not None
        if not self._try_restart(shard):
            return False
        try:
            reply = self._workers[shard].request(msg, timeout=self.request_timeout)
            if reply.get("op") != "result":
                raise ShardWorkerError(
                    f"shard {shard} answered out of protocol", shard
                )
        except (ShardWorkerError, ShardProtocolError):
            self.worker_failures += 1
            self.breakers[shard].record_failure()
            return False
        self.breakers[shard].record_success()
        self._scatter(
            lanes, reply["plans"],
            {int(i): _rebuild_error(e) for i, e in reply["errors"].items()},
            plans, errors,
        )
        return True

    def _try_restart(self, shard: int) -> bool:
        """Respawn one shard within the restart budget; False when exhausted."""
        if self.restarts >= self.max_restarts * self.n_shards:
            return False
        assert self._workers is not None
        self._workers[shard].spawn()
        self.restarts += 1
        return True

    def _serve_fallback(
        self,
        lanes: list[int],
        fams: list[str],
        cs: list[float],
        vs: list[float],
        plans: list[Optional[ServedPlan]],
        errors: dict[int, BaseException],
    ) -> None:
        """Serve a degraded shard's lanes through the parent's own chain."""
        sub = self._sub_batch(lanes, fams, cs, vs)
        sub_plans, sub_errors = self.fallback._serve_batch_impl(*sub)
        self.fallback_lanes += len(lanes)
        self._scatter(
            lanes, sub_plans,
            {i: _normalize_error(e) for i, e in sub_errors.items()},
            plans, errors,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "inprocess" if self.inprocess else "multiprocess"
        return f"ShardedPlanServer(workers={self.n_shards}, mode={mode})"
