"""Greedy cycle-stealing schedules (Section 6).

The paper's "natural recipe": choose each period length myopically,

    t_k = argmax_{t > c}  (t - c) * p(T_{k-1} + t),

i.e. maximize the *expected work of the current period alone*.  Section 6
observes that greedy is optimal for the geometrically decreasing lifespan
scenario (memorylessness makes myopia harmless) but **not** for the
uniform-risk scenario — quantified by experiment E6-GREEDY.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.optimize import minimize_scalar

from ..exceptions import InvalidScheduleError
from .life_functions import LifeFunction
from .schedule import Schedule

__all__ = ["greedy_next_period", "greedy_schedule"]


def greedy_next_period(
    p: LifeFunction, c: float, start: float, tol: float = 1e-12
) -> Optional[float]:
    """The greedy period length from elapsed time ``start``, or ``None``.

    Maximizes ``g(t) = (t - c) p(start + t)`` over ``t ∈ (c, horizon - start)``.
    Returns ``None`` when no productive period is available (the window is
    exhausted or the maximal expected gain is non-positive).
    """
    lifespan = p.lifespan
    if math.isfinite(lifespan):
        hi = lifespan - start
    else:
        hi = float(p.inverse(1e-15)) - start
    if hi <= c:
        return None

    def neg_gain(t: float) -> float:
        return -(t - c) * float(p(start + t))

    # Grid seed guards against local maxima of non-unimodal g (e.g. mixtures).
    ts = c + (hi - c) * np.linspace(0.0, 1.0, 257)[1:]
    vals = np.array([-neg_gain(float(t)) for t in ts])
    k = int(np.argmax(vals))
    lo_b = float(ts[max(0, k - 1)])
    hi_b = float(ts[min(len(ts) - 1, k + 1)])
    res = minimize_scalar(neg_gain, bounds=(lo_b, hi_b), method="bounded",
                          options={"xatol": 1e-13})
    t_star = float(res.x)
    best = max(-float(res.fun), float(vals[k]))
    if best <= tol:
        return None
    if -float(res.fun) < float(vals[k]):
        t_star = float(ts[k])
    return t_star if t_star > c else None


def greedy_schedule(
    p: LifeFunction,
    c: float,
    max_periods: int = 10_000,
    tail_tol: float = 1e-12,
) -> Schedule:
    """Build the full greedy schedule by repeated myopic maximization.

    Stops when no productive period remains, when the marginal expected gain
    falls below ``tail_tol`` relative to the accumulated expectation, or at
    ``max_periods``.

    Raises
    ------
    InvalidScheduleError
        If not even the first period can be productive (``p`` dies before
        ``c`` elapses with any usable probability).
    """
    periods: list[float] = []
    start = 0.0
    e_so_far = 0.0
    for _ in range(max_periods):
        t = greedy_next_period(p, c, start)
        if t is None:
            break
        gain = (t - c) * float(p(start + t))
        if periods and gain < tail_tol * max(1.0, e_so_far):
            break
        periods.append(t)
        start += t
        e_so_far += gain
    if not periods:
        raise InvalidScheduleError(
            f"greedy found no productive period (c={c} too large for this life function)"
        )
    return Schedule(periods)
