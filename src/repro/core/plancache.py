"""Content-addressed schedule plan cache: O(1) amortized schedule serving.

The paper's guidelines make every optimal schedule a deterministic function
of the pair ``(p, c)`` (plus search tolerances): Theorem 3.1's recurrence
propagates ``t_0`` deterministically, and Theorems 3.2/3.3 pin the search
interval.  Repeated and near-repeated queries therefore need not re-run the
multi-start NLP or the batch recurrence sweep — a cached plan keyed on the
life function's content address answers them exactly.

This module provides:

* :class:`PlanCache` — a bounded, thread-safe, in-memory LRU with an optional
  disk tier (JSON files with atomic writes, a versioned schema, and
  corruption-tolerant loads).  Keys combine a life function's
  :meth:`~repro.core.life_functions.LifeFunction.fingerprint` with the
  overhead ``c``, the search tolerances, and the engine — see
  :func:`plan_key`.
* :class:`CacheStats` — hit / miss / latency counters, exposed per cache.
* :func:`default_plan_cache` — a process-wide cache shared by the CLI and by
  sweep workers, and :func:`default_cache_dir` — the conventional on-disk
  location (``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/plancache``).

Cache values travel through :mod:`repro.io`'s versioned serializers, so the
disk tier shares the library's stable JSON formats.  Memory hits return the
*original* result objects (all frozen/immutable), hence bit-identical
schedules; disk hits round-trip floats exactly (``repr``-precision JSON).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import random
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

from ..exceptions import CycleStealingError, PlanCacheError
from .life_functions import LifeFunction

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "LatencyReservoir",
    "PlanCache",
    "plan_key",
    "default_cache_dir",
    "default_plan_cache",
    "reset_default_plan_cache",
]

#: Version of the on-disk entry schema.  Bump on any incompatible change to
#: the key construction or payload formats; entries written under other
#: versions are invisible (they live in a versioned subdirectory).
CACHE_SCHEMA_VERSION = 1


def _canon(value: Any) -> str:
    """Canonical, exact text for one key component (floats via ``hex``)."""
    if value is None:
        return "~"
    if isinstance(value, bool):
        return "T" if value else "F"
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return value
    if isinstance(value, (tuple, list)):
        return "[" + ";".join(_canon(v) for v in value) + "]"
    raise PlanCacheError(f"cannot canonicalize cache-key component {value!r}")


def plan_key(op: str, fingerprint: str, c: float, **extras: Any) -> str:
    """Build a cache key: operation + content address + overhead + tolerances.

    ``extras`` carries whatever parameters change the answer (grid, widen,
    engine, m_max, ...); they are sorted by name so call sites cannot
    accidentally produce distinct keys for identical queries.
    """
    parts = [op, fingerprint, f"c={_canon(float(c))}"]
    parts.extend(f"{name}={_canon(extras[name])}" for name in sorted(extras))
    return "|".join(parts)


class LatencyReservoir:
    """Bounded reservoir sample of latencies with p50/p95/p99 read-out.

    Mean latency counters (``hit_seconds`` / ``miss_seconds``) hide tail
    behavior, which is what a serving SLO is written against.  This keeps a
    classic Vitter reservoir (uniform over all observations, O(capacity)
    memory) with a *seeded* RNG, so two runs observing the same latency
    stream report the same percentiles.  Thread-safe; percentiles use the
    nearest-rank rule on the current sample.
    """

    __slots__ = ("capacity", "count", "_sample", "_rng", "_lock")

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if capacity < 1:
            raise PlanCacheError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.count = 0
        self._sample: list[float] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def add(self, seconds: float) -> None:
        """Record one observation (reservoir-sampled beyond ``capacity``)."""
        with self._lock:
            self.count += 1
            if len(self._sample) < self.capacity:
                self._sample.append(float(seconds))
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.capacity:
                    self._sample[slot] = float(seconds)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (nearest rank); NaN with no observations."""
        with self._lock:
            sample = sorted(self._sample)
        if not sample:
            return math.nan
        rank = max(1, math.ceil(q / 100.0 * len(sample)))
        return sample[rank - 1]

    def percentiles(self) -> dict[str, float]:
        """The serving percentiles: ``{"p50": ..., "p95": ..., "p99": ...}``."""
        return {f"p{q}": self.percentile(q) for q in (50, 95, 99)}

    def as_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"count": self.count}
        d.update(self.percentiles())
        return d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencyReservoir(count={self.count}, capacity={self.capacity})"


@dataclass
class CacheStats:
    """Hit / miss / latency counters for one :class:`PlanCache`."""

    hits: int = 0  #: memory-tier hits
    disk_hits: int = 0  #: disk-tier hits (promoted to memory)
    misses: int = 0  #: full recomputations
    puts: int = 0  #: entries inserted into the memory tier
    evictions: int = 0  #: LRU evictions from the memory tier
    corrupt_loads: int = 0  #: disk entries dropped as unreadable/corrupt
    hit_seconds: float = 0.0  #: time spent serving hits (both tiers)
    miss_seconds: float = 0.0  #: time spent computing misses
    uncacheable: int = 0  #: lookups skipped (e.g. unfingerprintable p)
    extra: dict = field(default_factory=dict)
    #: Per-lookup latency reservoir (p50/p95/p99 across hits *and* misses).
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0 when untouched)."""
        n = self.lookups
        return (self.hits + self.disk_hits) / n if n else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt_loads": self.corrupt_loads,
            "uncacheable": self.uncacheable,
            "hit_rate": self.hit_rate,
            "hit_seconds": self.hit_seconds,
            "miss_seconds": self.miss_seconds,
            "latency": self.latency.as_dict(),
        }


def default_cache_dir() -> Path:
    """The conventional on-disk cache location.

    ``$REPRO_CACHE_DIR`` when set; otherwise ``$XDG_CACHE_HOME/repro/plancache``
    (with the usual ``~/.cache`` fallback).
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "plancache"


class PlanCache:
    """Bounded LRU of schedule plans with an optional JSON disk tier.

    Parameters
    ----------
    maxsize:
        Memory-tier capacity (entries).  The least recently used entry is
        evicted on overflow.  Must be >= 1.
    cache_dir:
        Directory for the disk tier; ``None`` disables it.  Entries are
        written atomically (temp file + ``os.replace``) under a
        schema-versioned subdirectory, so concurrent writers and version
        bumps are safe, and unreadable entries degrade to recomputation.

    Thread safety: all tier bookkeeping runs under one lock; the *compute*
    callback of :meth:`get_or_compute` runs outside it (concurrent misses on
    the same key may compute twice — idempotent, so only wasteful).
    """

    def __init__(
        self,
        maxsize: int = 1024,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if maxsize < 1:
            raise PlanCacheError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._mem: "OrderedDict[str, Any]" = OrderedDict()

    # ------------------------------------------------------------------
    # Key helpers
    # ------------------------------------------------------------------

    @staticmethod
    def fingerprint_of(p: LifeFunction) -> Optional[str]:
        """``p.fingerprint()``, or ``None`` when ``p`` cannot be addressed."""
        try:
            return p.fingerprint()
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------

    def get_or_compute(
        self,
        key: Optional[str],
        compute: Callable[[], Any],
        to_payload: Optional[Callable[[Any], dict]] = None,
        from_payload: Optional[Callable[[dict], Any]] = None,
    ) -> Any:
        """Serve ``key`` from memory, then disk, then by running ``compute``.

        ``to_payload`` / ``from_payload`` are the :mod:`repro.io`-style
        serializers for the disk tier; omit them for memory-only entries.
        ``key=None`` (unfingerprintable life function) bypasses the cache
        entirely and just computes.
        """
        if key is None:
            self.stats.uncacheable += 1
            return compute()
        start = time.perf_counter()
        with self._lock:
            if key in self._mem:
                self._mem.move_to_end(key)
                value = self._mem[key]
                self.stats.hits += 1
                elapsed = time.perf_counter() - start
                self.stats.hit_seconds += elapsed
                self.stats.latency.add(elapsed)
                return value
        if from_payload is not None:
            payload = self._disk_read(key)
            if payload is not None:
                try:
                    value = from_payload(payload)
                except (CycleStealingError, KeyError, TypeError, ValueError):
                    self.stats.corrupt_loads += 1
                else:
                    self._mem_put(key, value)
                    self.stats.disk_hits += 1
                    elapsed = time.perf_counter() - start
                    self.stats.hit_seconds += elapsed
                    self.stats.latency.add(elapsed)
                    return value
        value = compute()
        self.stats.misses += 1
        elapsed = time.perf_counter() - start
        self.stats.miss_seconds += elapsed
        self.stats.latency.add(elapsed)
        self._mem_put(key, value)
        if to_payload is not None:
            try:
                self._disk_write(key, to_payload(value))
            except (OSError, TypeError, ValueError):
                pass  # an unwritable disk tier must never fail the query
        return value

    def peek(
        self,
        key: Optional[str],
        from_payload: Optional[Callable[[dict], Any]] = None,
    ) -> Optional[Any]:
        """Serve ``key`` from memory or disk **without ever computing**.

        The warm-only lookup used by the serving fallback chain's cache tier:
        a hit behaves exactly like :meth:`get_or_compute` (LRU touch, disk
        promotion, hit counters) but a miss returns ``None`` and is *not*
        counted in :attr:`CacheStats.misses` (nothing was recomputed).
        """
        if key is None:
            self.stats.uncacheable += 1
            return None
        start = time.perf_counter()
        with self._lock:
            if key in self._mem:
                self._mem.move_to_end(key)
                value = self._mem[key]
                self.stats.hits += 1
                elapsed = time.perf_counter() - start
                self.stats.hit_seconds += elapsed
                self.stats.latency.add(elapsed)
                return value
        if from_payload is not None:
            payload = self._disk_read(key)
            if payload is not None:
                try:
                    value = from_payload(payload)
                except (CycleStealingError, KeyError, TypeError, ValueError):
                    self.stats.corrupt_loads += 1
                else:
                    self._mem_put(key, value)
                    self.stats.disk_hits += 1
                    elapsed = time.perf_counter() - start
                    self.stats.hit_seconds += elapsed
                    self.stats.latency.add(elapsed)
                    return value
        return None

    def _mem_put(self, key: str, value: Any) -> None:
        with self._lock:
            self._mem[key] = value
            self._mem.move_to_end(key)
            self.stats.puts += 1
            while len(self._mem) > self.maxsize:
                self._mem.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._mem

    def clear(self, memory: bool = True, disk: bool = False) -> None:
        """Drop cached entries (the memory tier, and optionally disk)."""
        if memory:
            with self._lock:
                self._mem.clear()
        if disk and self.cache_dir is not None:
            root = self._disk_root()
            if root.is_dir():
                for path in root.glob("*.json"):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------

    def _disk_root(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"v{CACHE_SCHEMA_VERSION}"

    def _entry_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:40]
        return self._disk_root() / f"{digest}.json"

    def disk_entries(self) -> int:
        """Number of entries in the (current-schema) disk tier."""
        if self.cache_dir is None:
            return 0
        root = self._disk_root()
        return sum(1 for _ in root.glob("*.json")) if root.is_dir() else 0

    def _disk_read(self, key: str) -> Optional[dict]:
        """Load a payload, tolerating missing/corrupt/mismatched entries."""
        if self.cache_dir is None:
            return None
        path = self._entry_path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.stats.corrupt_loads += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key  # digest collision or truncated key
            or not isinstance(entry.get("payload"), dict)
        ):
            self.stats.corrupt_loads += 1
            return None
        return entry["payload"]

    def _disk_write(self, key: str, payload: dict) -> None:
        """Atomically persist one entry (temp file + rename)."""
        if self.cache_dir is None:
            return
        root = self._disk_root()
        root.mkdir(parents=True, exist_ok=True)
        entry = {"schema": CACHE_SCHEMA_VERSION, "key": key, "payload": payload}
        text = json.dumps(entry)
        fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, self._entry_path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tier = f", disk={self.cache_dir}" if self.cache_dir else ""
        return f"PlanCache(size={len(self)}/{self.maxsize}{tier})"


# ----------------------------------------------------------------------
# Process-wide default cache (CLI, sweep workers)
# ----------------------------------------------------------------------

_default_lock = threading.Lock()
_default_cache: Optional[PlanCache] = None
#: Directories that failed the writability probe (warn + re-probe avoidance).
_unwritable_dirs: set[Path] = set()


def _probe_writable(path: Path) -> bool:
    """Whether ``path`` can be created and written (one tiny probe file)."""
    try:
        path.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path, suffix=".probe")
        os.close(fd)
        os.unlink(tmp)
        return True
    except OSError:
        return False


def default_plan_cache(
    cache_dir: Optional[Union[str, Path]] = None, maxsize: int = 1024
) -> PlanCache:
    """The process-wide shared cache, created on first use.

    The first caller fixes the configuration; later calls with a *different*
    ``cache_dir`` replace the singleton (sweep workers pass their pool's
    directory explicitly, so a worker process always converges on the
    directory its sweep was launched with).

    When the requested directory (typically ``$REPRO_CACHE_DIR`` or the XDG
    default via :func:`default_cache_dir`) is read-only or cannot be
    created, the cache degrades to **memory-only** with a one-time
    :class:`RuntimeWarning` instead of raising — an unwritable disk must
    never take plan serving down.
    """
    global _default_cache
    wanted = Path(cache_dir) if cache_dir is not None else None
    with _default_lock:
        if wanted in _unwritable_dirs:
            wanted = None
        elif wanted is not None and (
            _default_cache is None or _default_cache.cache_dir != wanted
        ):
            if not _probe_writable(wanted):
                _unwritable_dirs.add(wanted)
                import warnings

                warnings.warn(
                    f"plan cache directory {wanted} is not writable; "
                    "degrading to a memory-only plan cache",
                    RuntimeWarning,
                    stacklevel=2,
                )
                wanted = None
        if _default_cache is None or (
            wanted is not None and _default_cache.cache_dir != wanted
        ):
            _default_cache = PlanCache(maxsize=maxsize, cache_dir=wanted)
        return _default_cache


def reset_default_plan_cache() -> None:
    """Forget the process-wide cache (tests and long-lived services)."""
    global _default_cache
    with _default_lock:
        _default_cache = None
        _unwritable_dirs.clear()
