"""Proposition 2.1: normalization to *productive* schedules.

The proposition (quoted from [3], in the strengthened form the paper uses)
says any schedule ``S`` can be replaced by ``S'`` with ``E(S'; p) >= E(S; p)``
such that every period of ``S'`` — save the last, if ``S'`` is finite — has
length ``> c``.  This licenses ordinary subtraction in place of positive
subtraction throughout the analysis.

The constructive transform implemented here is stronger than needed: a period
with ``t_i <= c`` contributes ``t_i ⊖ c = 0`` work, yet *delays* every later
period (``p`` is decreasing, so pushing boundaries later can only shrink their
survival probabilities).  Deleting such a period therefore never decreases
``E`` — and strictly increases it whenever a later productive period exists
and ``p`` is strictly decreasing there.
"""

from __future__ import annotations

import numpy as np

from .life_functions import LifeFunction
from .schedule import Schedule

__all__ = ["make_productive", "is_productive"]


def is_productive(schedule: Schedule, c: float) -> bool:
    """Whether every period except possibly the last has length ``> c``."""
    return schedule.is_productive(c)


def make_productive(schedule: Schedule, c: float) -> Schedule:
    """Apply the Proposition 2.1 transform: drop all unproductive periods.

    Returns a schedule whose periods all exceed ``c`` — except in the
    degenerate case where *no* period exceeds ``c``, in which case the single
    longest period is kept (it contributes zero work either way, but a
    schedule must be non-empty).

    Guarantee (tested property): for every life function ``p``,
    ``make_productive(S, c).expected_work(p, c) >= S.expected_work(p, c)``.
    """
    periods = schedule.periods
    keep = periods > c
    if not np.any(keep):
        return Schedule([float(periods.max())])
    return Schedule(periods[keep])
