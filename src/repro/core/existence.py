"""Existence of optimal schedules (Corollary 3.2).

Corollary 3.2 gives a *necessary* condition for a life function to admit an
optimal schedule: there must exist ``t > c`` with

    p(t) > -(t - c) * p'(t).

The paper notes this can be used to show that the heavy-tailed family
``p(t) = 1/(t+1)^d`` (``d > 1``) admits **no** optimal schedule: the supremum
of expected work is approached but never attained.

Two tools are provided:

* :func:`admissibility_margin` / :func:`satisfies_corollary_32` — the literal
  Corollary 3.2 test, evaluated on a grid with sign refinement;
* :func:`supremum_probe` — an empirical non-attainment diagnostic: the best
  ``m``-period expected work as ``m`` grows, together with each maximizer's
  total span.  For a family with no optimum the values keep creeping upward
  while the maximizing schedules drift (spans grow without bound); for
  admissible families the sequence is attained exactly at some finite ``m``
  (concave case) or converges with stable maximizers (geometric-decreasing).

Note on the literal test: the printed Corollary 3.2 condition is satisfied
*near* ``t = c`` by every life function with ``p(c) > 0`` (the right-hand side
vanishes at ``t = c``), so the literal inequality alone cannot separate the
Pareto family — the separation in the paper comes from the way the corollary
is *used* (the tail behaviour of the (3.1) system).  We therefore also expose
:func:`tail_admissibility_margin`, which evaluates the margin in the limit of
large ``t``: for ``p = (1+t)^{-d}`` the margin ratio tends to ``1 - d + o(1)``
times the survival, i.e. is eventually negative for every ``d > 1``, matching
the paper's claim; for the Section 4 families it stays positive where it
matters.  The EXPERIMENTS entry E32-EXIST reports both diagnostics.
"""

from __future__ import annotations

import math

import numpy as np

from ..types import FloatArray
from .life_functions import LifeFunction
from .optimizer import optimize_fixed_m

__all__ = [
    "admissibility_margin",
    "satisfies_corollary_32",
    "tail_admissibility_margin",
    "supremum_probe",
]


def admissibility_margin(p: LifeFunction, c: float, t: FloatArray) -> FloatArray:
    """``p(t) + (t - c) p'(t)`` — positive where the Corollary 3.2 condition holds."""
    arr = np.asarray(t, dtype=float)
    return np.asarray(p(arr), dtype=float) + (arr - c) * np.asarray(
        p.derivative(arr), dtype=float
    )


def satisfies_corollary_32(p: LifeFunction, c: float, n_points: int = 2048) -> bool:
    """Literal Corollary 3.2 test: does some ``t > c`` have a positive margin?

    Probes a grid from just above ``c`` to the lifespan (or a deep tail
    quantile).  A necessary condition for an optimum to exist; its failure
    *proves* non-existence.
    """
    upper = p.lifespan if math.isfinite(p.lifespan) else float(p.inverse(1e-12))
    if upper <= c:
        return False
    ts = np.linspace(c, upper, n_points + 1)[1:]
    return bool(np.any(admissibility_margin(p, c, ts) > 0.0))


def tail_admissibility_margin(
    p: LifeFunction, c: float, quantiles: FloatArray | None = None
) -> FloatArray:
    """The normalized margin ``1 + (t - c) p'(t)/p(t)`` deep in the tail.

    Evaluated at the times where survival equals each ``quantile`` (default
    ``1e-3 .. 1e-9``).  Eventually-negative values are the signature of the
    heavy-tailed (``1/(t+1)^d``, ``d > 1``) non-attainment phenomenon: the
    hazard decays so fast that postponing work is always worth it, so no
    schedule is ever final.  Families with bounded lifespan or exponential
    tails keep this quantity positive at every scale that matters.
    """
    qs = (
        np.asarray(quantiles, dtype=float)
        if quantiles is not None
        else np.array([1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9])
    )
    out = np.empty(qs.size)
    for i, q in enumerate(qs):
        t = float(p.inverse(q))
        pv = float(p(t))
        if pv <= 0.0 or t <= c:
            out[i] = math.nan
            continue
        out[i] = 1.0 + (t - c) * float(p.derivative(t)) / pv
    return out


def supremum_probe(
    p: LifeFunction, c: float, m_values: list[int] | None = None
) -> dict[int, tuple[float, float]]:
    """Best ``m``-period expected work and maximizer span, per ``m``.

    Returns ``{m: (E*_m, total_span_m)}``.  Monotone-increasing ``E*_m`` with
    unbounded spans is the empirical signature of a missing optimum.
    """
    if m_values is None:
        m_values = [1, 2, 4, 8, 16, 32]
    results: dict[int, tuple[float, float]] = {}
    horizon = p.lifespan if math.isfinite(p.lifespan) else float(p.inverse(1e-15))
    for m in sorted(m_values):
        res = optimize_fixed_m(p, c, m, horizon=horizon)
        results[m] = (res.expected_work, res.schedule.total_length)
    return results
