"""Differential-testing harness for the batch recurrence engine.

The lane-based :func:`~repro.core.batch_recurrence.generate_schedules_batch`
earns its keep only if it is *provably* the same recurrence as the scalar
:func:`~repro.core.recurrence.generate_schedule` oracle — the same twin-engine
contract the simulation layer enforces (``repro.simulation.testing``).  This
module packages that contract for schedule *search*:

* **structural parity** — for every ``t_0`` lane, the batch engine must
  produce the identical period count and termination reason as the scalar
  recurrence (these are discrete; no tolerance);
* **numeric parity** — periods, boundaries, recurrence targets, and expected
  work must agree within ULP-scale tolerance (NumPy and libm transcendental
  kernels may differ in the last bit, so bit-exactness is not demanded the
  way it is for the RNG-driven simulation engines).

:func:`canonical_recurrence_cases` pins one ``(p, c)`` instance per exported
life-function family; :func:`recurrence_parity_matrix` sweeps them all.
Kept import-light (core only — no ``repro.simulation``) so the core layer
never depends upward.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..types import FloatArray
from .batch_recurrence import BatchRecurrenceResult, generate_schedules_batch
from .life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    GompertzLife,
    LifeFunction,
    LogLogisticLife,
    MixtureLife,
    ParetoLife,
    PolynomialRisk,
    TimeScaledLife,
    UniformRisk,
    WeibullLife,
)
from .recurrence import generate_schedule
from .t0_bounds import t0_bracket

__all__ = [
    "RecurrenceParityReport",
    "canonical_recurrence_cases",
    "default_t0_grid",
    "recurrence_parity_check",
    "assert_recurrence_parity",
    "recurrence_parity_matrix",
]

#: Relative tolerance for period/target/expected-work agreement.  The batch
#: engine evaluates the same formulas through NumPy ufuncs, whose kernels may
#: round differently from ``math.*`` in the last ulp; after ~10^2 recurrence
#: steps that compounds to at most ~1e-13 relative.
DEFAULT_RTOL = 1e-9
DEFAULT_ATOL = 1e-12


def canonical_recurrence_cases() -> list[tuple[str, LifeFunction, float]]:
    """One ``(label, p, c)`` cell per life-function family.

    Covers the four Section 4 closed-form families (twice each way: the
    parity matrix runs them with and without closed forms), the extra
    analytic families, and the composition transforms.  Overheads are chosen
    so every case terminates in well under a thousand periods.
    """
    return [
        ("uniform", UniformRisk(100.0), 2.0),
        ("poly2", PolynomialRisk(2, 100.0), 2.0),
        ("poly3", PolynomialRisk(3, 80.0), 1.5),
        ("geomdec", GeometricDecreasingLifespan(1.2), 0.5),
        ("geominc", GeometricIncreasingRisk(30.0), 1.0),
        ("exponential", WeibullLife(k=1.0, scale=25.0), 1.0),
        ("weibull_convex", WeibullLife(k=0.8, scale=20.0), 1.0),
        ("weibull_general", WeibullLife(k=1.8, scale=20.0), 1.0),
        ("pareto", ParetoLife(d=2.0), 1.0),
        ("gompertz", GompertzLife(b=0.02, eta=0.15), 1.0),
        ("loglogistic", LogLogisticLife(alpha=15.0, beta=2.5), 1.0),
        ("mixture", MixtureLife([UniformRisk(50.0), UniformRisk(150.0)], [0.5, 0.5]), 2.0),
        ("timescaled", TimeScaledLife(UniformRisk(100.0), 0.5), 1.0),
        ("conditional", UniformRisk(120.0).conditional(30.0), 2.0),
    ]


def default_t0_grid(p: LifeFunction, c: float, n: int = 17) -> FloatArray:
    """An ``n``-point ``t_0`` grid spanning (a widened) Theorem 3.2/3.3 bracket.

    Falls back to a median-reclaim-scale window for GENERAL-shape families
    where Theorem 3.3 gives no upper bound.  Every returned candidate is
    strictly productive (``t_0 > c``) and, for finite lifespans, strictly
    inside ``[0, L)``.
    """
    try:
        bracket = t0_bracket(p, c)
        lo, hi = bracket.lo / 1.5, bracket.hi * 1.5
    except ValueError:
        median = float(p.inverse(0.5))
        lo, hi = 0.25 * median, 1.75 * median
    lo = max(lo, c * (1 + 1e-6) + 1e-9)
    if math.isfinite(p.lifespan):
        hi = min(hi, p.lifespan * (1 - 1e-9))
    if hi <= lo:
        hi = lo * (1 + 1e-6)
    return np.linspace(lo, hi, n)


@dataclass(frozen=True)
class RecurrenceParityReport:
    """Outcome of one scalar-vs-batch recurrence cross-validation."""

    #: Human-readable case label (family name / grid description).
    label: str
    n_lanes: int
    #: Structural + numeric agreement across every lane.
    match: bool
    #: Largest relative period discrepancy across all lanes/steps.
    max_rel_period_diff: float
    #: Largest relative recurrence-target discrepancy.
    max_rel_target_diff: float
    #: Largest relative expected-work discrepancy.
    max_rel_work_diff: float
    #: One line per failing lane (empty when ``match``).
    mismatches: list[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - diagnostic formatting
        verdict = "PARITY" if self.match else f"DIVERGED ({len(self.mismatches)} lanes)"
        return (
            f"{self.label}: {verdict} over {self.n_lanes} lanes; "
            f"rel diffs: periods {self.max_rel_period_diff:.3g}, "
            f"targets {self.max_rel_target_diff:.3g}, "
            f"E {self.max_rel_work_diff:.3g}"
        )


def _rel_diff(a: FloatArray, b: FloatArray) -> float:
    """Largest elementwise relative difference (0.0 for empty input)."""
    if a.size == 0:
        return 0.0
    scale = np.maximum(np.maximum(np.abs(a), np.abs(b)), 1.0)
    return float(np.max(np.abs(a - b) / scale))


def recurrence_parity_check(
    p: LifeFunction,
    c: float,
    t0s: Optional[Sequence[float]] = None,
    use_closed_form: bool = True,
    max_periods: int = 10_000,
    tail_tol: float = 1e-12,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    label: str = "recurrence",
) -> RecurrenceParityReport:
    """Run the scalar oracle lane-by-lane against one batch call and compare.

    For each ``t_0`` the scalar :func:`generate_schedule` defines the
    specification; the batch lane must reproduce its period count and
    termination reason exactly, and its periods, boundaries, targets, and
    expected work within ``rtol``/``atol``.
    """
    grid = default_t0_grid(p, c) if t0s is None else np.asarray(t0s, dtype=float)
    batch: BatchRecurrenceResult = generate_schedules_batch(
        p, c, grid, max_periods=max_periods, tail_tol=tail_tol,
        use_closed_form=use_closed_form,
    )
    mismatches: list[str] = []
    worst_period = worst_target = worst_work = 0.0
    for i, t0 in enumerate(grid):
        scalar = generate_schedule(
            p, c, float(t0), max_periods=max_periods, tail_tol=tail_tol,
            use_closed_form=use_closed_form,
        )
        lane = batch.outcome(i)
        if lane.schedule.num_periods != scalar.schedule.num_periods:
            mismatches.append(
                f"t0={t0:.6g}: period count {lane.schedule.num_periods} "
                f"!= scalar {scalar.schedule.num_periods}"
            )
            continue
        if lane.termination is not scalar.termination:
            mismatches.append(
                f"t0={t0:.6g}: termination {lane.termination.value} "
                f"!= scalar {scalar.termination.value}"
            )
            continue
        d_period = _rel_diff(lane.schedule.periods, scalar.schedule.periods)
        d_bound = _rel_diff(lane.schedule.boundaries, scalar.schedule.boundaries)
        d_target = _rel_diff(lane.targets, scalar.targets)
        ew_scalar = scalar.schedule.expected_work(p, c)
        d_work = _rel_diff(
            np.array([float(batch.expected_work[i])]), np.array([ew_scalar])
        )
        worst_period = max(worst_period, d_period, d_bound)
        worst_target = max(worst_target, d_target)
        worst_work = max(worst_work, d_work)
        tol = rtol + atol  # _rel_diff already normalizes by max(|a|,|b|,1)
        for name, d in [("periods", d_period), ("boundaries", d_bound),
                        ("targets", d_target), ("expected work", d_work)]:
            if d > tol:
                mismatches.append(f"t0={t0:.6g}: {name} rel diff {d:.3g} > {tol:.3g}")
    return RecurrenceParityReport(
        label=label,
        n_lanes=int(grid.size),
        match=not mismatches,
        max_rel_period_diff=worst_period,
        max_rel_target_diff=worst_target,
        max_rel_work_diff=worst_work,
        mismatches=mismatches,
    )


def assert_recurrence_parity(report: RecurrenceParityReport) -> None:
    """Fail loudly if a parity check found any diverging lane."""
    assert report.match, (
        f"recurrence engines diverged on {report.label} "
        f"({len(report.mismatches)}/{report.n_lanes} lanes):\n  "
        + "\n  ".join(report.mismatches[:10])
    )


def recurrence_parity_matrix(
    cases: Optional[Sequence[tuple[str, LifeFunction, float]]] = None,
    n_grid: int = 17,
    use_closed_form: bool = True,
    max_periods: int = 10_000,
) -> list[RecurrenceParityReport]:
    """Parity-check every canonical family; returns one report per case."""
    if cases is None:
        cases = canonical_recurrence_cases()
    reports = []
    for label, p, c in cases:
        grid = default_t0_grid(p, c, n=n_grid)
        reports.append(
            recurrence_parity_check(
                p, c, grid, use_closed_form=use_closed_form,
                max_periods=max_periods,
                label=f"{label} (c={c}, closed_form={use_closed_form})",
            )
        )
    return reports
