"""Resilient plan serving: a degradation-aware fallback chain with breakers.

The serving stack built so far answers "what schedule should workstation i
run?" through increasingly expensive sources: a precomputed guideline table
(:class:`~repro.analysis.tables_precompute.TableServer`), the warm plan cache
(:class:`~repro.core.plancache.PlanCache`), the full ``t_0`` optimizer, and —
when everything else is down — the paper's closed-form Section 4 brackets,
which need nothing but arithmetic.  :class:`PlanServer` formalizes that chain

    table  →  warm cache  →  optimizer  →  guideline closed-form

with per-tier *circuit breakers* (a tier that keeps erroring is skipped for a
cooldown, then probed half-open) and per-tier latency / outcome counters
(:class:`TierStats`, extending :class:`~repro.core.plancache.CacheStats`).

Two kinds of non-answers are deliberately distinct:

* a **miss** — the tier is healthy but cannot answer (cold cache, absent
  table, query outside table bounds).  Misses fall through to the next tier
  and do *not* trip the breaker.
* an **error** — the tier misbehaved (an injected
  :class:`~repro.exceptions.FaultInjectionError` from :class:`TierChaos`, an
  unexpected exception).  Errors fall through *and* count toward opening the
  tier's breaker.

The guideline tier is the designed last resort: Theorems 3.2/3.3 and the
Section 4 brackets pin ``t_0`` in closed form, so a valid (if suboptimal)
schedule survives a total outage of every data-backed tier.  Only when even
that fails does :meth:`PlanServer.serve` raise
:class:`~repro.exceptions.PlanServingError`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

import numpy as np

from ..exceptions import (
    CycleStealingError,
    FaultInjectionError,
    PlanServingError,
)
from .life_functions import LifeFunction
from .optimizer import optimize_t0_via_recurrence
from .plancache import CacheStats, PlanCache, plan_key
from .recurrence import generate_schedule
from .schedule import Schedule
from .t0_bounds import (
    geometric_decreasing_bracket,
    geometric_increasing_window,
    lower_bound_t0,
    polynomial_bracket,
    uniform_bracket,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "CircuitBreaker",
    "TierStats",
    "TierChaos",
    "ServedPlan",
    "PlanServer",
]

#: Breaker state: requests flow normally.
BREAKER_CLOSED = "closed"
#: Breaker state: the tier is skipped until the cooldown elapses.
BREAKER_OPEN = "open"
#: Breaker state: cooldown elapsed; probe requests are let through.
BREAKER_HALF_OPEN = "half_open"


class _TierMiss(CycleStealingError):
    """Internal: a healthy tier could not answer (falls through, no breaker)."""


class CircuitBreaker:
    """A per-tier circuit breaker: open after K consecutive failures.

    States follow the classic pattern: ``closed`` (requests flow; K
    consecutive failures open the breaker), ``open`` (requests are rejected
    until ``cooldown`` seconds pass), ``half_open`` (one or more probe
    requests flow; a success closes the breaker, a failure re-opens it and
    restarts the cooldown).

    ``clock`` is injectable (defaults to :func:`time.monotonic`) so tests and
    the chaos harness can drive the cooldown deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._clock = clock if clock is not None else time.monotonic
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Lifetime counters: transitions into ``open`` / rejected requests.
        self.opens = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed cooldown."""
        if self._state == BREAKER_OPEN and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = BREAKER_HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (resets on success)."""
        return self._consecutive_failures

    def allow(self) -> bool:
        """Whether a request may proceed; counts rejections when not."""
        if self.state == BREAKER_OPEN:
            self.rejections += 1
            return False
        return True

    def record_success(self) -> None:
        """A request succeeded: reset failures; a half-open probe closes."""
        self._consecutive_failures = 0
        self._state = BREAKER_CLOSED

    def record_failure(self) -> None:
        """A request failed: count it; at threshold (or half-open) open up."""
        self._consecutive_failures += 1
        if (
            self._state == BREAKER_HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            if self._state != BREAKER_OPEN:
                self.opens += 1
            self._state = BREAKER_OPEN
            self._opened_at = self._clock()

    def as_dict(self) -> dict[str, Any]:
        """State + counters, JSON-ready."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "opens": self.opens,
            "rejections": self.rejections,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state!r}, opens={self.opens})"


@dataclass
class TierStats(CacheStats):
    """Per-tier serving counters: :class:`CacheStats` plus error accounting.

    For a serving tier the inherited fields read as: ``hits`` — queries this
    tier answered; ``misses`` — healthy fall-throughs (cold cache, absent
    table); ``hit_seconds`` / ``miss_seconds`` — time spent on each.  The
    extensions count the unhealthy paths.
    """

    errors: int = 0  #: tier raised (injected fault or unexpected exception)
    rejected: int = 0  #: requests short-circuited by an open breaker
    error_seconds: float = 0.0  #: time spent inside failing tier calls

    def as_dict(self) -> dict[str, Any]:
        """All counters, JSON-ready."""
        out = super().as_dict()
        out.update(
            errors=self.errors,
            rejected=self.rejected,
            error_seconds=self.error_seconds,
        )
        return out


class TierChaos:
    """Seeded fault injector for the serving chain (chaos testing).

    ``rates`` maps tier names to failure probabilities in ``[0, 1]``.  When
    :meth:`maybe_fail` fires it raises
    :class:`~repro.exceptions.FaultInjectionError` naming the tier, which
    :class:`PlanServer` counts as a tier *error* (breaker-tripping).  Draws
    come from a dedicated seeded stream, so a chaos run is reproducible from
    ``(seed, rates)`` alone.
    """

    #: Stream tag keeping chaos draws disjoint from fault-plan streams.
    _STREAM = 977

    def __init__(self, rates: Mapping[str, float], seed: int = 0) -> None:
        for tier, rate in rates.items():
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(
                    f"chaos rate for tier {tier!r} must be in [0, 1], got {rate}"
                )
        self.rates = {str(k): float(v) for k, v in rates.items()}
        self.seed = int(seed)
        self._rng = np.random.default_rng([self.seed, self._STREAM])
        self.injected: dict[str, int] = {}

    def maybe_fail(self, tier: str) -> None:
        """Raise an injected fault for ``tier`` with its configured rate."""
        rate = self.rates.get(tier, 0.0)
        if rate <= 0.0:
            return
        if self._rng.random() < rate:
            self.injected[tier] = self.injected.get(tier, 0) + 1
            raise FaultInjectionError(tier)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TierChaos(rates={self.rates}, seed={self.seed})"


@dataclass(frozen=True)
class ServedPlan:
    """A schedule served by the chain, with provenance (which tier answered)."""

    family: str
    c: float
    param_value: float
    t0: float
    schedule: Schedule
    expected_work: float
    #: The answering tier: ``"table"``/``"cache"``/``"optimizer"``/``"guideline"``.
    source: str
    termination: str = ""

    @property
    def degraded(self) -> bool:
        """Whether the plan came from the closed-form last-resort tier."""
        return self.source == "guideline"


class PlanServer:
    """Serve schedules through the table → cache → optimizer → guideline chain.

    Parameters
    ----------
    table_server:
        A :class:`~repro.analysis.tables_precompute.TableServer` (or ``None``
        to disable the table tier).  Only its strict
        ``serve_from_table(family, c, param_value)`` method is used.
    cache:
        The warm :class:`~repro.core.plancache.PlanCache` probed by the cache
        tier (peek-only: a cold cache is a miss, never a recompute) and
        ridden by the optimizer tier (so optimizer answers re-warm it).
    breaker_threshold / breaker_cooldown / clock:
        Circuit-breaker configuration, shared by all tiers; ``clock`` is
        injectable for deterministic tests.
    chaos:
        An optional :class:`TierChaos` injecting per-tier faults — the chaos
        harness's entry point into the serving stack.

    A query that *no* tier can answer raises
    :class:`~repro.exceptions.PlanServingError`; per-tier outcomes accumulate
    in :attr:`tier_stats` and :attr:`breakers`.
    """

    #: Tier order: cheapest-first, most-robust-last.
    TIERS = ("table", "cache", "optimizer", "guideline")

    #: Defaults matching ``optimize_t0_via_recurrence`` so the cache tier
    #: peeks the same content-addressed key the optimizer writes.
    _SEARCH_GRID = 129
    _SEARCH_WIDEN = 1.5
    _SEARCH_ENGINE = "batch"

    def __init__(
        self,
        table_server: Optional[Any] = None,
        cache: Optional[PlanCache] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
        chaos: Optional[TierChaos] = None,
    ) -> None:
        self.table_server = table_server
        self.cache = cache
        self.chaos = chaos
        self.breakers: dict[str, CircuitBreaker] = {
            tier: CircuitBreaker(breaker_threshold, breaker_cooldown, clock)
            for tier in self.TIERS
        }
        self.tier_stats: dict[str, TierStats] = {
            tier: TierStats() for tier in self.TIERS
        }
        self.served = 0  #: queries answered by some tier
        self.exhausted = 0  #: queries for which every tier failed

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def serve(self, family: str, c: float, param_value: float) -> ServedPlan:
        """A valid schedule for family ``(c, θ)`` from the first able tier."""
        p = self._family_life(family, param_value)
        last_error: Optional[BaseException] = None
        for tier in self.TIERS:
            breaker = self.breakers[tier]
            stats = self.tier_stats[tier]
            if not breaker.allow():
                stats.rejected += 1
                continue
            start = time.perf_counter()
            try:
                if self.chaos is not None:
                    self.chaos.maybe_fail(tier)
                plan = self._serve_tier(tier, p, family, c, param_value)
            except _TierMiss:
                stats.misses += 1
                stats.miss_seconds += time.perf_counter() - start
                breaker.record_success()  # healthy response, just no answer
            except Exception as exc:  # injected faults + genuine tier bugs
                stats.errors += 1
                stats.error_seconds += time.perf_counter() - start
                breaker.record_failure()
                last_error = exc
            else:
                stats.hits += 1
                stats.hit_seconds += time.perf_counter() - start
                breaker.record_success()
                self.served += 1
                return plan
        self.exhausted += 1
        raise PlanServingError(
            f"every serving tier failed for family={family!r} c={c} "
            f"param={param_value}"
        ) from last_error

    def stats_dict(self) -> dict[str, Any]:
        """Chain-wide counters + per-tier stats and breaker states, JSON-ready."""
        return {
            "served": self.served,
            "exhausted": self.exhausted,
            "tiers": {t: self.tier_stats[t].as_dict() for t in self.TIERS},
            "breakers": {t: self.breakers[t].as_dict() for t in self.TIERS},
        }

    def reset_breakers(self) -> None:
        """Force every breaker back to ``closed`` (recovery drills)."""
        for tier, breaker in self.breakers.items():
            self.breakers[tier] = CircuitBreaker(
                breaker.failure_threshold, breaker.cooldown, breaker._clock
            )

    # ------------------------------------------------------------------
    # Tiers
    # ------------------------------------------------------------------

    def _serve_tier(
        self, tier: str, p: LifeFunction, family: str, c: float, param_value: float
    ) -> ServedPlan:
        if tier == "table":
            return self._tier_table(family, c, param_value)
        if tier == "cache":
            return self._tier_cache(p, family, c, param_value)
        if tier == "optimizer":
            return self._tier_optimizer(p, family, c, param_value)
        if tier == "guideline":
            return self._tier_guideline(p, family, c, param_value)
        raise PlanServingError(f"unknown serving tier {tier!r}")

    def _tier_table(self, family: str, c: float, param_value: float) -> ServedPlan:
        """Interpolate + polish from the precomputed guideline table."""
        if self.table_server is None:
            raise _TierMiss("no table server configured")
        try:
            answer = self.table_server.serve_from_table(family, c, param_value)
        except CycleStealingError as exc:
            # Absent table / out-of-bounds query / NaN cell: the table tier
            # is healthy but cannot answer — fall through without tripping.
            raise _TierMiss(str(exc)) from exc
        return ServedPlan(
            family=family, c=c, param_value=param_value, t0=answer.t0,
            schedule=answer.schedule, expected_work=answer.expected_work,
            source="table", termination=answer.termination,
        )

    def _tier_cache(
        self, p: LifeFunction, family: str, c: float, param_value: float
    ) -> ServedPlan:
        """Peek the warm plan cache at the optimizer's content address."""
        if self.cache is None:
            raise _TierMiss("no plan cache configured")
        fingerprint = PlanCache.fingerprint_of(p)
        if fingerprint is None:
            raise _TierMiss("life function is not content-addressable")
        key = plan_key(
            "t0opt", fingerprint, c,
            bracket=None, grid=self._SEARCH_GRID,
            widen=self._SEARCH_WIDEN, engine=self._SEARCH_ENGINE,
        )
        from .. import io as _io  # deferred: repro.io imports core modules

        cached = self.cache.peek(key, from_payload=_io.t0_search_from_dict)
        if cached is None:
            raise _TierMiss("plan cache is cold for this query")
        t0, outcome, ew = cached
        return ServedPlan(
            family=family, c=c, param_value=param_value, t0=t0,
            schedule=outcome.schedule, expected_work=ew,
            source="cache", termination=outcome.termination.value,
        )

    def _tier_optimizer(
        self, p: LifeFunction, family: str, c: float, param_value: float
    ) -> ServedPlan:
        """Run the full ``t_0`` search (re-warming the cache when present)."""
        try:
            t0, outcome, ew = optimize_t0_via_recurrence(
                p, c,
                grid=self._SEARCH_GRID, widen=self._SEARCH_WIDEN,
                engine=self._SEARCH_ENGINE, cache=self.cache,
            )
        except CycleStealingError as exc:
            raise _TierMiss(str(exc)) from exc
        return ServedPlan(
            family=family, c=c, param_value=param_value, t0=t0,
            schedule=outcome.schedule, expected_work=ew,
            source="optimizer", termination=outcome.termination.value,
        )

    def _tier_guideline(
        self, p: LifeFunction, family: str, c: float, param_value: float
    ) -> ServedPlan:
        """Closed-form Section 4 bracket → recurrence; Theorem 3.2 last resort.

        Needs no tables, no cache, no search — only arithmetic on ``(c, θ)``
        plus (in the happy path) one deterministic recurrence walk, so it
        stays serviceable through a total outage of the data-backed tiers.
        """
        t0 = self._closed_form_t0(family, c, param_value)
        schedule: Optional[Schedule] = None
        termination = ""
        if t0 is not None:
            t0 = self._clamp_t0(p, c, t0)
        if t0 is not None:
            try:
                outcome = generate_schedule(p, c, t0)
            except CycleStealingError:
                schedule = Schedule([t0])  # single conservative period
            else:
                schedule = outcome.schedule
                termination = outcome.termination.value
        if schedule is None:
            # No closed form for this family (or degenerate bracket): the
            # Theorem 3.2 bound still yields one productive period.
            t0 = self._clamp_t0(p, c, lower_bound_t0(p, c))
            if t0 is None:
                raise _TierMiss(
                    f"no productive closed-form period exists for c={c} "
                    f"(overhead at or above the usable lifespan)"
                )
            schedule = Schedule([t0])
        ew = schedule.expected_work(p, c)
        return ServedPlan(
            family=family, c=c, param_value=param_value, t0=float(t0),
            schedule=schedule, expected_work=ew,
            source="guideline", termination=termination,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _family_life(family: str, param_value: float) -> LifeFunction:
        from ..analysis.tables_precompute import (  # deferred: analysis imports core
            TABLE_FAMILIES,
            make_family_life,
        )

        fixed = TABLE_FAMILIES.get(family, (None, {}))[1]
        return make_family_life(family, param_value, fixed)

    @staticmethod
    def _closed_form_t0(family: str, c: float, param_value: float) -> Optional[float]:
        """The Section 4 closed-form guideline ``t_0`` for one family.

        Finite-lifespan families use the bracket's lower bound (conservative:
        shorter periods risk less work per owner return); the
        geometric-decreasing family uses the Lemma 3.1 ceiling, which
        Section 4.2 shows is remarkably close to the true optimum.
        """
        try:
            if family == "uniform":
                return uniform_bracket(param_value, c).lo
            if family == "poly":
                return polynomial_bracket(3, param_value, c).lo
            if family == "geomdec":
                return geometric_decreasing_bracket(param_value, c).hi
            if family == "geominc":
                return geometric_increasing_window(param_value, c).lo
        except ValueError:
            return None
        return None

    @staticmethod
    def _clamp_t0(p: LifeFunction, c: float, t0: float) -> Optional[float]:
        """Clamp a guideline ``t0`` into the productive band ``(c, L)``."""
        if not math.isfinite(t0):
            return None
        if math.isfinite(p.lifespan):
            t0 = min(t0, p.lifespan * (1 - 1e-12))
        if t0 <= c:
            t0 = c * (1 + 1e-9) + 1e-12
            if math.isfinite(p.lifespan) and t0 >= p.lifespan:
                return None
        return t0
