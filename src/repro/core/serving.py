"""Resilient plan serving: a degradation-aware fallback chain with breakers.

The serving stack built so far answers "what schedule should workstation i
run?" through increasingly expensive sources: a precomputed guideline table
(:class:`~repro.analysis.tables_precompute.TableServer`), the warm plan cache
(:class:`~repro.core.plancache.PlanCache`), the full ``t_0`` optimizer, and —
when everything else is down — the paper's closed-form Section 4 brackets,
which need nothing but arithmetic.  :class:`PlanServer` formalizes that chain

    table  →  warm cache  →  optimizer  →  guideline closed-form

with per-tier *circuit breakers* (a tier that keeps erroring is skipped for a
cooldown, then probed half-open) and per-tier latency / outcome counters
(:class:`TierStats`, extending :class:`~repro.core.plancache.CacheStats`).

Two kinds of non-answers are deliberately distinct:

* a **miss** — the tier is healthy but cannot answer (cold cache, absent
  table, query outside table bounds).  Misses fall through to the next tier
  and do *not* trip the breaker.
* an **error** — the tier misbehaved (an injected
  :class:`~repro.exceptions.FaultInjectionError` from :class:`TierChaos`, an
  unexpected exception).  Errors fall through *and* count toward opening the
  tier's breaker.

The guideline tier is the designed last resort: Theorems 3.2/3.3 and the
Section 4 brackets pin ``t_0`` in closed form, so a valid (if suboptimal)
schedule survives a total outage of every data-backed tier.  Only when even
that fails does :meth:`PlanServer.serve` raise
:class:`~repro.exceptions.PlanServingError`.
"""

from __future__ import annotations

import math
import threading
import time
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Optional, Sequence, Union

import numpy as np

from ..exceptions import (
    CycleStealingError,
    FaultInjectionError,
    PlanServingError,
)
from .life_functions import LifeFunction
from .optimizer import optimize_t0_via_recurrence
from .plancache import CacheStats, LatencyReservoir, PlanCache, plan_key
from .recurrence import generate_schedule
from .schedule import Schedule
from .t0_bounds import (
    geometric_decreasing_bracket,
    geometric_increasing_window,
    lower_bound_t0,
    polynomial_bracket,
    uniform_bracket,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "CircuitBreaker",
    "TierStats",
    "TierChaos",
    "ServedPlan",
    "PlanServer",
    "BatchingPlanServer",
]

#: Breaker state: requests flow normally.
BREAKER_CLOSED = "closed"
#: Breaker state: the tier is skipped until the cooldown elapses.
BREAKER_OPEN = "open"
#: Breaker state: cooldown elapsed; probe requests are let through.
BREAKER_HALF_OPEN = "half_open"


class _TierMiss(CycleStealingError):
    """Internal: a healthy tier could not answer (falls through, no breaker)."""


class CircuitBreaker:
    """A per-tier circuit breaker: open after K consecutive failures.

    States follow the classic pattern: ``closed`` (requests flow; K
    consecutive failures open the breaker), ``open`` (requests are rejected
    until ``cooldown`` seconds pass), ``half_open`` (one or more probe
    requests flow; a success closes the breaker, a failure re-opens it and
    restarts the cooldown).

    ``clock`` is injectable (defaults to :func:`time.monotonic`) so tests and
    the chaos harness can drive the cooldown deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._clock = clock if clock is not None else time.monotonic
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Lifetime counters: transitions into ``open`` / rejected requests.
        self.opens = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed cooldown."""
        if self._state == BREAKER_OPEN and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = BREAKER_HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (resets on success)."""
        return self._consecutive_failures

    def allow(self) -> bool:
        """Whether a request may proceed; counts rejections when not."""
        if self.state == BREAKER_OPEN:
            self.rejections += 1
            return False
        return True

    def record_success(self) -> None:
        """A request succeeded: reset failures; a half-open probe closes."""
        self._consecutive_failures = 0
        self._state = BREAKER_CLOSED

    def record_failure(self) -> None:
        """A request failed: count it; at threshold (or half-open) open up."""
        self._consecutive_failures += 1
        if (
            self._state == BREAKER_HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            if self._state != BREAKER_OPEN:
                self.opens += 1
            self._state = BREAKER_OPEN
            self._opened_at = self._clock()

    def as_dict(self) -> dict[str, Any]:
        """State + counters, JSON-ready."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "opens": self.opens,
            "rejections": self.rejections,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state!r}, opens={self.opens})"


@dataclass
class TierStats(CacheStats):
    """Per-tier serving counters: :class:`CacheStats` plus error accounting.

    For a serving tier the inherited fields read as: ``hits`` — queries this
    tier answered; ``misses`` — healthy fall-throughs (cold cache, absent
    table); ``hit_seconds`` / ``miss_seconds`` — time spent on each.  The
    extensions count the unhealthy paths.
    """

    errors: int = 0  #: tier raised (injected fault or unexpected exception)
    rejected: int = 0  #: requests short-circuited by an open breaker
    error_seconds: float = 0.0  #: time spent inside failing tier calls

    def as_dict(self) -> dict[str, Any]:
        """All counters, JSON-ready."""
        out = super().as_dict()
        out.update(
            errors=self.errors,
            rejected=self.rejected,
            error_seconds=self.error_seconds,
        )
        return out


class TierChaos:
    """Seeded fault injector for the serving chain (chaos testing).

    ``rates`` maps tier names to failure probabilities in ``[0, 1]``.  When
    :meth:`maybe_fail` fires it raises
    :class:`~repro.exceptions.FaultInjectionError` naming the tier, which
    :class:`PlanServer` counts as a tier *error* (breaker-tripping).  Every
    tier draws from its **own** seeded substream, so the k-th draw for a
    tier is the same number regardless of how draws for *other* tiers are
    interleaved — which makes a batched tier-by-tier pass
    (:meth:`PlanServer.serve_batch`) fail the exact same queries as the
    equivalent scalar :meth:`PlanServer.serve` loop.  A chaos run is
    reproducible from ``(seed, rates)`` alone.

    ``shard`` (optional) salts every tier substream with a shard index, so
    the N workers of a sharded serving tier (:mod:`repro.core.sharding`)
    each draw from their **own** per-tier streams: the k-th draw for
    ``(tier, shard)`` is the same number whether the shard's lanes are
    served in a worker process or serially in-process — the substream
    contract behind the cross-process chaos parity suite.  ``shard=None``
    (the default) reproduces the unsalted PR-5 streams exactly.
    """

    #: Stream tag keeping chaos draws disjoint from fault-plan streams.
    _STREAM = 977

    def __init__(
        self,
        rates: Mapping[str, float],
        seed: int = 0,
        shard: Optional[int] = None,
    ) -> None:
        for tier, rate in rates.items():
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(
                    f"chaos rate for tier {tier!r} must be in [0, 1], got {rate}"
                )
        self.rates = {str(k): float(v) for k, v in rates.items()}
        self.seed = int(seed)
        self.shard = int(shard) if shard is not None else None
        self._rngs: dict[str, np.random.Generator] = {}
        self.injected: dict[str, int] = {}

    def _tier_rng(self, tier: str) -> np.random.Generator:
        rng = self._rngs.get(tier)
        if rng is None:
            entropy = [self.seed, self._STREAM, zlib.crc32(tier.encode())]
            if self.shard is not None:
                # The shard word precedes a nonzero tag: SeedSequence strips
                # trailing zero words, so a bare shard 0 would alias the
                # unsalted stream.
                entropy.extend([self.shard, self._STREAM + 1])
            rng = np.random.default_rng(entropy)
            self._rngs[tier] = rng
        return rng

    def maybe_fail(self, tier: str) -> None:
        """Raise an injected fault for ``tier`` with its configured rate."""
        rate = self.rates.get(tier, 0.0)
        if rate <= 0.0:
            return
        if self._tier_rng(tier).random() < rate:
            self.injected[tier] = self.injected.get(tier, 0) + 1
            raise FaultInjectionError(tier)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TierChaos(rates={self.rates}, seed={self.seed})"


@dataclass(frozen=True)
class ServedPlan:
    """A schedule served by the chain, with provenance (which tier answered)."""

    family: str
    c: float
    param_value: float
    t0: float
    schedule: Schedule
    expected_work: float
    #: The answering tier: ``"table"``/``"cache"``/``"optimizer"``/``"guideline"``.
    source: str
    termination: str = ""

    @property
    def degraded(self) -> bool:
        """Whether the plan came from the closed-form last-resort tier."""
        return self.source == "guideline"


class PlanServer:
    """Serve schedules through the table → cache → optimizer → guideline chain.

    Parameters
    ----------
    table_server:
        A :class:`~repro.analysis.tables_precompute.TableServer` (or ``None``
        to disable the table tier).  Only its strict
        ``serve_from_table(family, c, param_value)`` method is used.
    cache:
        The warm :class:`~repro.core.plancache.PlanCache` probed by the cache
        tier (peek-only: a cold cache is a miss, never a recompute) and
        ridden by the optimizer tier (so optimizer answers re-warm it).
    breaker_threshold / breaker_cooldown / clock:
        Circuit-breaker configuration, shared by all tiers; ``clock`` is
        injectable for deterministic tests.
    chaos:
        An optional :class:`TierChaos` injecting per-tier faults — the chaos
        harness's entry point into the serving stack.
    search_engine:
        The ``optimize_t0_via_recurrence`` engine the optimizer tier runs
        (``"batch"``, ``"scalar"``, or ``"jit"``) and the cache tier keys its
        peek on.  ``"jit"`` uses the compiled :mod:`repro.jitkernels` sweep
        where numba is usable and degrades transparently otherwise; note the
        engine is part of the plan-cache key, so the cache tier only sees
        entries written by an optimizer tier running the same engine.

    A query that *no* tier can answer raises
    :class:`~repro.exceptions.PlanServingError`; per-tier outcomes accumulate
    in :attr:`tier_stats` and :attr:`breakers`.
    """

    #: Tier order: cheapest-first, most-robust-last.
    TIERS = ("table", "cache", "optimizer", "guideline")

    #: Defaults matching ``optimize_t0_via_recurrence`` so the cache tier
    #: peeks the same content-addressed key the optimizer writes.
    _SEARCH_GRID = 129
    _SEARCH_WIDEN = 1.5
    _SEARCH_ENGINE = "batch"

    def __init__(
        self,
        table_server: Optional[Any] = None,
        cache: Optional[PlanCache] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
        chaos: Optional[TierChaos] = None,
        search_engine: Optional[str] = None,
    ) -> None:
        if search_engine is not None:
            if search_engine not in ("batch", "scalar", "jit"):
                raise ValueError(
                    f"unknown search_engine {search_engine!r}; expected "
                    f"'batch', 'scalar', or 'jit'"
                )
            # Shadows the class default for this server only; both the cache
            # tier's key and the optimizer tier's sweep read it, so the two
            # stay consistent with each other.
            self._SEARCH_ENGINE = search_engine
        self.table_server = table_server
        self.cache = cache
        self.chaos = chaos
        self.breakers: dict[str, CircuitBreaker] = {
            tier: CircuitBreaker(breaker_threshold, breaker_cooldown, clock)
            for tier in self.TIERS
        }
        self.tier_stats: dict[str, TierStats] = {
            tier: TierStats() for tier in self.TIERS
        }
        self.served = 0  #: queries answered by some tier
        self.exhausted = 0  #: queries for which every tier failed
        self.coalesced = 0  #: duplicate batch queries folded onto one serve
        self.latency = LatencyReservoir(seed=2)  #: per-query serve latency

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def serve(self, family: str, c: float, param_value: float) -> ServedPlan:
        """A valid schedule for family ``(c, θ)`` from the first able tier.

        Thin ``n = 1`` wrapper over the batched serving pass, so a scalar
        loop and :meth:`serve_batch` share one code path (and are therefore
        bit-identical on duplicate-free batches).
        """
        plans, errors = self._serve_batch_impl([family], [c], [param_value])
        if errors:
            raise errors[0]
        plan = plans[0]
        assert plan is not None
        return plan

    def serve_batch(
        self,
        families: Sequence[str],
        cs: Sequence[float],
        param_values: Sequence[float],
    ) -> list[ServedPlan]:
        """Serve a whole query batch through the tier chain, one pass per tier.

        Identical queries (same ``(family, c, θ)``) are coalesced onto one
        serve and fanned back out (the :attr:`coalesced` counter tracks the
        folds); distinct queries flow tier by tier — the table tier answers
        all its lanes in one vectorized
        :meth:`~repro.analysis.tables_precompute.TableServer.serve_from_table_batch`
        call, and surviving lanes fall through to the cache → optimizer →
        guideline tiers in input order with exactly the scalar
        breaker/chaos/stats bookkeeping.

        Raises :class:`~repro.exceptions.PlanServingError` if **any** query
        exhausted every tier (the per-lane errors are preserved on the
        raised error's ``__cause__`` chain; use
        :class:`BatchingPlanServer` for per-query error delivery).
        """
        plans, errors = self._serve_batch_impl(families, cs, param_values)
        if errors:
            first = min(errors)
            raise PlanServingError(
                f"{len(errors)} of {len(plans)} batched queries failed — invalid "
                f"or exhausted every serving tier (first failure at index {first})"
            ) from errors[first]
        return [plan for plan in plans if plan is not None]

    def _serve_batch_impl(
        self,
        families: Sequence[str],
        cs: Sequence[float],
        param_values: Sequence[float],
    ) -> tuple[list[Optional[ServedPlan]], dict[int, BaseException]]:
        """The batched tier chain; per-lane outcomes, nothing raised.

        Returns ``(plans, errors)`` where ``plans[i]`` is the served plan
        for query ``i`` (``None`` exactly when ``i in errors``) and
        ``errors[i]`` is the :class:`~repro.exceptions.PlanServingError` the
        scalar path would have raised for that query.
        """
        start = time.perf_counter()
        fams = [str(f) for f in families]
        n = len(fams)
        cs_list = [float(c) for c in cs]
        vs_list = [float(v) for v in param_values]
        if len(cs_list) != n or len(vs_list) != n:
            raise PlanServingError(
                f"serve_batch needs equally long families/cs/param_values, "
                f"got {n}/{len(cs_list)}/{len(vs_list)}"
            )
        if n == 0:
            return [], {}

        # Coalesce exact duplicates onto their first occurrence.
        rep_of: list[int] = []
        first_seen: dict[tuple[str, str, str], int] = {}
        for i in range(n):
            key = (fams[i], cs_list[i].hex(), vs_list[i].hex())
            rep_of.append(first_seen.setdefault(key, i))
        reps = [i for i in range(n) if rep_of[i] == i]

        # Invalid queries (unknown family, out-of-domain parameter) fail per
        # lane before any tier runs — exactly the exception the scalar path
        # raises, without poisoning the rest of the batch.
        ps: dict[int, LifeFunction] = {}
        invalid: dict[int, BaseException] = {}
        for i in reps:
            try:
                ps[i] = self._family_life(fams[i], vs_list[i])
            except Exception as exc:
                invalid[i] = exc

        plans: dict[int, ServedPlan] = {}
        last_error: dict[int, BaseException] = {}
        pending = [i for i in reps if i not in invalid]
        for tier in self.TIERS:
            if not pending:
                break
            if tier == "table":
                pending = self._tier_pass_table(pending, fams, cs_list, vs_list, plans)
            else:
                pending = self._tier_pass_scalar(
                    tier, pending, ps, fams, cs_list, vs_list, plans, last_error
                )

        errors: dict[int, BaseException] = dict(invalid)
        for i in pending:  # representatives that exhausted every tier
            errors[i] = PlanServingError(
                f"every serving tier failed for family={fams[i]!r} c={cs_list[i]} "
                f"param={vs_list[i]}"
            )
            errors[i].__cause__ = last_error.get(i)
            self.exhausted += 1
        self.served += len(plans)

        # Fan coalesced duplicates back out.  A duplicate that the scalar
        # loop would have served *after* its twin warmed the plan cache
        # reports source="cache"; other sources repeat verbatim.
        for i in range(n):
            r = rep_of[i]
            if r == i:
                continue
            self.coalesced += 1
            if r in errors:
                errors[i] = errors[r]
                if r not in invalid:  # validation failures aren't "exhausted"
                    self.exhausted += 1
                continue
            plan = plans[r]
            source = plan.source
            if (
                source == "optimizer"
                and self.cache is not None
                and PlanCache.fingerprint_of(ps[r]) is not None
            ):
                source = "cache"
            plans[i] = plan if source == plan.source else replace(plan, source=source)
            self.served += 1

        elapsed = time.perf_counter() - start
        for _ in range(n):
            self.latency.add(elapsed / n)
        return [plans.get(i) for i in range(n)], errors

    def _tier_pass_table(
        self,
        pending: list[int],
        fams: list[str],
        cs: list[float],
        vs: list[float],
        plans: dict[int, ServedPlan],
    ) -> list[int]:
        """One vectorized table-tier pass over the pending lanes.

        Breaker and chaos bookkeeping runs per lane in input order *before*
        the single batched table call — the same order the scalar loop
        touches them — so breaker trips mid-pass reject exactly the lanes
        the scalar loop would have rejected.
        """
        breaker = self.breakers["table"]
        stats = self.tier_stats["table"]
        survivors: list[int] = []
        attempting: list[int] = []
        for i in pending:
            if not breaker.allow():
                stats.rejected += 1
                survivors.append(i)
                continue
            if self.chaos is not None:
                fault_start = time.perf_counter()
                try:
                    self.chaos.maybe_fail("table")
                except Exception:
                    stats.errors += 1
                    stats.error_seconds += time.perf_counter() - fault_start
                    breaker.record_failure()
                    survivors.append(i)
                    continue
            attempting.append(i)
        if not attempting:
            return survivors

        start = time.perf_counter()
        batched = getattr(self.table_server, "serve_from_table_batch", None)
        try:
            if self.table_server is None:
                raise _TierMiss("no table server configured")
            if batched is not None:
                results: list[Any] = batched(
                    [fams[i] for i in attempting],
                    [cs[i] for i in attempting],
                    [vs[i] for i in attempting],
                )
            else:  # table server without a batch path: scalar per lane
                results = []
                for i in attempting:
                    try:
                        results.append(
                            self.table_server.serve_from_table(fams[i], cs[i], vs[i])
                        )
                    except CycleStealingError as exc:
                        results.append(exc)
        except _TierMiss:
            share = (time.perf_counter() - start) / len(attempting)
            for i in attempting:
                stats.misses += 1
                stats.miss_seconds += share
                breaker.record_success()
                survivors.append(i)
            return sorted(survivors)
        except Exception:  # a genuinely broken table tier fails every lane
            share = (time.perf_counter() - start) / len(attempting)
            for i in attempting:
                stats.errors += 1
                stats.error_seconds += share
                breaker.record_failure()
                survivors.append(i)
            return sorted(survivors)

        share = (time.perf_counter() - start) / len(attempting)
        for i, res in zip(attempting, results):
            if isinstance(res, CycleStealingError):
                # Absent table / out-of-bounds / NaN cell: healthy miss.
                stats.misses += 1
                stats.miss_seconds += share
                breaker.record_success()
                survivors.append(i)
            else:
                stats.hits += 1
                stats.hit_seconds += share
                breaker.record_success()
                plans[i] = ServedPlan(
                    family=fams[i], c=cs[i], param_value=vs[i], t0=res.t0,
                    schedule=res.schedule, expected_work=res.expected_work,
                    source="table", termination=res.termination,
                )
        return sorted(survivors)

    def _tier_pass_scalar(
        self,
        tier: str,
        pending: list[int],
        ps: Mapping[int, LifeFunction],
        fams: list[str],
        cs: list[float],
        vs: list[float],
        plans: dict[int, ServedPlan],
        last_error: dict[int, BaseException],
    ) -> list[int]:
        """One per-lane tier pass with exactly the scalar serve bookkeeping."""
        breaker = self.breakers[tier]
        stats = self.tier_stats[tier]
        survivors: list[int] = []
        for i in pending:
            if not breaker.allow():
                stats.rejected += 1
                survivors.append(i)
                continue
            start = time.perf_counter()
            try:
                if self.chaos is not None:
                    self.chaos.maybe_fail(tier)
                plan = self._serve_tier(tier, ps[i], fams[i], cs[i], vs[i])
            except _TierMiss:
                stats.misses += 1
                stats.miss_seconds += time.perf_counter() - start
                breaker.record_success()  # healthy response, just no answer
                survivors.append(i)
            except Exception as exc:  # injected faults + genuine tier bugs
                stats.errors += 1
                stats.error_seconds += time.perf_counter() - start
                breaker.record_failure()
                last_error[i] = exc
                survivors.append(i)
            else:
                stats.hits += 1
                stats.hit_seconds += time.perf_counter() - start
                breaker.record_success()
                plans[i] = plan
        return survivors

    def stats_dict(self) -> dict[str, Any]:
        """Chain-wide counters + per-tier stats and breaker states, JSON-ready."""
        return {
            "served": self.served,
            "exhausted": self.exhausted,
            "coalesced": self.coalesced,
            "latency": self.latency.as_dict(),
            "tiers": {t: self.tier_stats[t].as_dict() for t in self.TIERS},
            "breakers": {t: self.breakers[t].as_dict() for t in self.TIERS},
        }

    def reset_breakers(self) -> None:
        """Force every breaker back to ``closed`` (recovery drills)."""
        for tier, breaker in self.breakers.items():
            self.breakers[tier] = CircuitBreaker(
                breaker.failure_threshold, breaker.cooldown, breaker._clock
            )

    # ------------------------------------------------------------------
    # Tiers
    # ------------------------------------------------------------------

    def _serve_tier(
        self, tier: str, p: LifeFunction, family: str, c: float, param_value: float
    ) -> ServedPlan:
        if tier == "table":
            return self._tier_table(family, c, param_value)
        if tier == "cache":
            return self._tier_cache(p, family, c, param_value)
        if tier == "optimizer":
            return self._tier_optimizer(p, family, c, param_value)
        if tier == "guideline":
            return self._tier_guideline(p, family, c, param_value)
        raise PlanServingError(f"unknown serving tier {tier!r}")

    def _tier_table(self, family: str, c: float, param_value: float) -> ServedPlan:
        """Interpolate + polish from the precomputed guideline table."""
        if self.table_server is None:
            raise _TierMiss("no table server configured")
        try:
            answer = self.table_server.serve_from_table(family, c, param_value)
        except CycleStealingError as exc:
            # Absent table / out-of-bounds query / NaN cell: the table tier
            # is healthy but cannot answer — fall through without tripping.
            raise _TierMiss(str(exc)) from exc
        return ServedPlan(
            family=family, c=c, param_value=param_value, t0=answer.t0,
            schedule=answer.schedule, expected_work=answer.expected_work,
            source="table", termination=answer.termination,
        )

    def _tier_cache(
        self, p: LifeFunction, family: str, c: float, param_value: float
    ) -> ServedPlan:
        """Peek the warm plan cache at the optimizer's content address."""
        if self.cache is None:
            raise _TierMiss("no plan cache configured")
        fingerprint = PlanCache.fingerprint_of(p)
        if fingerprint is None:
            raise _TierMiss("life function is not content-addressable")
        key = plan_key(
            "t0opt", fingerprint, c,
            bracket=None, grid=self._SEARCH_GRID,
            widen=self._SEARCH_WIDEN, engine=self._SEARCH_ENGINE,
        )
        from .. import io as _io  # deferred: repro.io imports core modules

        cached = self.cache.peek(key, from_payload=_io.t0_search_from_dict)
        if cached is None:
            raise _TierMiss("plan cache is cold for this query")
        t0, outcome, ew = cached
        return ServedPlan(
            family=family, c=c, param_value=param_value, t0=t0,
            schedule=outcome.schedule, expected_work=ew,
            source="cache", termination=outcome.termination.value,
        )

    def _tier_optimizer(
        self, p: LifeFunction, family: str, c: float, param_value: float
    ) -> ServedPlan:
        """Run the full ``t_0`` search (re-warming the cache when present)."""
        try:
            t0, outcome, ew = optimize_t0_via_recurrence(
                p, c,
                grid=self._SEARCH_GRID, widen=self._SEARCH_WIDEN,
                engine=self._SEARCH_ENGINE, cache=self.cache,
            )
        except CycleStealingError as exc:
            raise _TierMiss(str(exc)) from exc
        return ServedPlan(
            family=family, c=c, param_value=param_value, t0=t0,
            schedule=outcome.schedule, expected_work=ew,
            source="optimizer", termination=outcome.termination.value,
        )

    def _tier_guideline(
        self, p: LifeFunction, family: str, c: float, param_value: float
    ) -> ServedPlan:
        """Closed-form Section 4 bracket → recurrence; Theorem 3.2 last resort.

        Needs no tables, no cache, no search — only arithmetic on ``(c, θ)``
        plus (in the happy path) one deterministic recurrence walk, so it
        stays serviceable through a total outage of the data-backed tiers.
        """
        t0 = self._closed_form_t0(family, c, param_value)
        schedule: Optional[Schedule] = None
        termination = ""
        if t0 is not None:
            t0 = self._clamp_t0(p, c, t0)
        if t0 is not None:
            try:
                outcome = generate_schedule(p, c, t0)
            except CycleStealingError:
                schedule = Schedule([t0])  # single conservative period
            else:
                schedule = outcome.schedule
                termination = outcome.termination.value
        if schedule is None:
            # No closed form for this family (or degenerate bracket): the
            # Theorem 3.2 bound still yields one productive period.
            t0 = self._clamp_t0(p, c, lower_bound_t0(p, c))
            if t0 is None:
                raise _TierMiss(
                    f"no productive closed-form period exists for c={c} "
                    f"(overhead at or above the usable lifespan)"
                )
            schedule = Schedule([t0])
        ew = schedule.expected_work(p, c)
        return ServedPlan(
            family=family, c=c, param_value=param_value, t0=float(t0),
            schedule=schedule, expected_work=ew,
            source="guideline", termination=termination,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _family_life(family: str, param_value: float) -> LifeFunction:
        from ..analysis.tables_precompute import (  # deferred: analysis imports core
            TABLE_FAMILIES,
            make_family_life,
        )

        fixed = TABLE_FAMILIES.get(family, (None, {}))[1]
        return make_family_life(family, param_value, fixed)

    @staticmethod
    def _closed_form_t0(family: str, c: float, param_value: float) -> Optional[float]:
        """The Section 4 closed-form guideline ``t_0`` for one family.

        Finite-lifespan families use the bracket's lower bound (conservative:
        shorter periods risk less work per owner return); the
        geometric-decreasing family uses the Lemma 3.1 ceiling, which
        Section 4.2 shows is remarkably close to the true optimum.
        """
        try:
            if family == "uniform":
                return uniform_bracket(param_value, c).lo
            if family == "poly":
                return polynomial_bracket(3, param_value, c).lo
            if family == "geomdec":
                return geometric_decreasing_bracket(param_value, c).hi
            if family == "geominc":
                return geometric_increasing_window(param_value, c).lo
        except ValueError:
            return None
        return None

    @staticmethod
    def _clamp_t0(p: LifeFunction, c: float, t0: float) -> Optional[float]:
        """Clamp a guideline ``t0`` into the productive band ``(c, L)``."""
        if not math.isfinite(t0):
            return None
        if math.isfinite(p.lifespan):
            t0 = min(t0, p.lifespan * (1 - 1e-12))
        if t0 <= c:
            t0 = c * (1 + 1e-9) + 1e-12
            if math.isfinite(p.lifespan) and t0 >= p.lifespan:
                return None
        return t0


class _Flight:
    """One distinct in-flight query plus every future waiting on it."""

    __slots__ = ("family", "c", "param_value", "futures")

    def __init__(self, family: str, c: float, param_value: float) -> None:
        self.family = family
        self.c = c
        self.param_value = param_value
        self.futures: list[Future] = []


class BatchingPlanServer:
    """A micro-batching front door for :class:`PlanServer`.

    Concurrent callers :meth:`submit` single queries; the server coalesces
    exact duplicates in flight (singleflight, keyed on the life function's
    ``fingerprint()``-based cache key — N identical concurrent requests cost
    one serve) and accumulates *distinct* queries until either ``max_batch``
    of them are waiting or the oldest has waited ``max_delay_ms``
    milliseconds, then serves the whole batch through
    :meth:`PlanServer.serve_batch`'s vectorized tier passes.

    The flush deadline is measured on a **monotonic** clock (never wall
    time, which steps under NTP) — injectable for tests.  Failures are
    delivered per future: a query that exhausted every tier gets its own
    :class:`~repro.exceptions.PlanServingError`; the rest of the batch still
    resolves.

    Use as a context manager (or call :meth:`close`) so the background
    flusher thread is joined deterministically.
    """

    def __init__(
        self,
        server: PlanServer,
        max_batch: int = 256,
        max_delay_ms: float = 2.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if isinstance(max_batch, bool) or not isinstance(max_batch, int):
            raise ValueError(f"max_batch must be an int >= 1, got {max_batch!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        delay = float(max_delay_ms)
        if not math.isfinite(delay) or delay < 0:
            raise ValueError(f"max_delay_ms must be finite and >= 0, got {max_delay_ms}")
        self.server = server
        self.max_batch = int(max_batch)
        self.max_delay_ms = delay
        self._clock = clock if clock is not None else time.monotonic
        self._cond = threading.Condition()
        self._flights: "dict[object, _Flight]" = {}
        self._oldest_at: Optional[float] = None
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        self.submitted = 0  #: queries accepted
        self.coalesced = 0  #: queries folded onto an identical in-flight one
        self.batches = 0  #: flushes dispatched

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def submit(self, family: str, c: float, param_value: float) -> Future:
        """Enqueue one query; the future resolves to a :class:`ServedPlan`."""
        fut: Future = Future()
        key = self._flight_key(family, c, param_value)
        with self._cond:
            if self._closed:
                raise PlanServingError("cannot submit to a closed BatchingPlanServer")
            flight = self._flights.get(key) if key is not None else None
            if flight is None:
                flight = _Flight(str(family), float(c), float(param_value))
                self._flights[key if key is not None else object()] = flight
                if self._oldest_at is None:
                    self._oldest_at = self._clock()
            else:
                self.coalesced += 1
            flight.futures.append(fut)
            self.submitted += 1
            self._ensure_flusher()
            self._cond.notify_all()
        return fut

    def serve(self, family: str, c: float, param_value: float) -> ServedPlan:
        """Blocking convenience wrapper: :meth:`submit` + ``result()``."""
        return self.submit(family, c, param_value).result()

    def flush(self) -> int:
        """Serve everything queued right now (caller's thread); count flushed."""
        with self._cond:
            batch = self._take_batch()
        return self._dispatch(batch)

    def close(self) -> None:
        """Flush the queue, stop the flusher thread, reject new submissions."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join()
        self.flush()  # anything racing in before the close flag

    def __enter__(self) -> "BatchingPlanServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def stats_dict(self) -> dict[str, Any]:
        """Front-door counters, JSON-ready."""
        with self._cond:
            queued = len(self._flights)
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "queued": queued,
            "max_batch": self.max_batch,
            "max_delay_ms": self.max_delay_ms,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _flight_key(self, family: str, c: float, param_value: float) -> Optional[str]:
        """The singleflight identity: the plan cache's content address."""
        try:
            p = self.server._family_life(str(family), float(param_value))
        except Exception:
            return None  # invalid query: served un-coalesced, fails per future
        fingerprint = PlanCache.fingerprint_of(p)
        if fingerprint is None:
            return None
        return plan_key("serve", fingerprint, float(c))

    def _ensure_flusher(self) -> None:
        # Called under the lock.
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._flusher, name="repro-batching-plan-server", daemon=True
            )
            self._thread.start()

    def _take_batch(self) -> list[_Flight]:
        # Called under the lock.
        batch = list(self._flights.values())
        self._flights.clear()
        self._oldest_at = None
        return batch

    def _deadline_remaining(self) -> Optional[float]:
        # Called under the lock; None when nothing is queued.
        if self._oldest_at is None:
            return None
        return self.max_delay_ms / 1000.0 - (self._clock() - self._oldest_at)

    def _flusher(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._closed:
                        batch = self._take_batch()
                        break
                    if len(self._flights) >= self.max_batch:
                        batch = self._take_batch()
                        break
                    remaining = self._deadline_remaining()
                    if remaining is not None and remaining <= 0:
                        batch = self._take_batch()
                        break
                    # An injected test clock can advance independently of
                    # wall time; cap the sleep so deadlines are re-checked.
                    if remaining is None:
                        timeout = None
                    elif self._clock is time.monotonic:
                        timeout = max(remaining, 0.0)
                    else:
                        timeout = max(min(remaining, 0.05), 0.0)
                    self._cond.wait(timeout=timeout)
                closed = self._closed
            self._dispatch(batch)
            if closed:
                return

    def _dispatch(self, batch: list[_Flight]) -> int:
        if not batch:
            return 0
        self.batches += 1
        families = [fl.family for fl in batch]
        cs = [fl.c for fl in batch]
        vs = [fl.param_value for fl in batch]
        try:
            plans, errors = self.server._serve_batch_impl(families, cs, vs)
        except Exception as exc:  # batch-level validation (unknown family, ...)
            for flight in batch:
                for fut in flight.futures:
                    fut.set_exception(exc)
            return len(batch)
        for i, flight in enumerate(batch):
            for fut in flight.futures:
                if i in errors:
                    fut.set_exception(errors[i])
                else:
                    fut.set_result(plans[i])
        return len(batch)
