"""Structural laws of optimal schedules (Section 5.2).

Theorem 5.2: for an optimal schedule under a *concave* life function, every
internal period is at least ``c`` longer than its successor
(``t_{i+1} <= t_i - c``); under a *convex* life function, at most ``c`` longer
(``t_{i+1} >= t_i - c``).  The uniform-risk scenario (both concave and convex)
attains equality, showing the theorem is tight.

Consequences verified here:

* Corollary 5.1 — strictly decreasing periods (concave);
* Corollary 5.2 — finiteness, with at most ``t_0 / c`` periods (concave);
* Corollary 5.3 — ``m < ceil(sqrt(2L/c + 1/4) + 1/2)`` (concave, lifespan L);
* the eq. (5.9) chain ``L >= m t_{m-1} + C(m,2) c`` used to prove it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..types import FloatArray
from .schedule import Schedule
from .t0_bounds import max_periods_bound

__all__ = [
    "period_decrements",
    "satisfies_concave_decrements",
    "satisfies_convex_decrements",
    "StructureReport",
    "verify_structure",
]


def period_decrements(schedule: Schedule) -> FloatArray:
    """``t_i - t_{i+1}`` for consecutive periods (positive = shrinking)."""
    return -np.diff(schedule.periods)


def satisfies_concave_decrements(schedule: Schedule, c: float, tol: float = 1e-9) -> bool:
    """Theorem 5.2, concave case: every ``t_{i+1} <= t_i - c`` (within ``tol``)."""
    if schedule.num_periods < 2:
        return True
    return bool(np.all(period_decrements(schedule) >= c - tol))


def satisfies_convex_decrements(schedule: Schedule, c: float, tol: float = 1e-9) -> bool:
    """Theorem 5.2, convex case: every ``t_{i+1} >= t_i - c`` (within ``tol``)."""
    if schedule.num_periods < 2:
        return True
    return bool(np.all(period_decrements(schedule) <= c + tol))


@dataclass(frozen=True)
class StructureReport:
    """Outcome of checking a schedule against the Section 5 structural laws."""

    num_periods: int
    #: min / max of ``t_i - t_{i+1}``; NaN for single-period schedules.
    min_decrement: float
    max_decrement: float
    concave_law_holds: bool
    convex_law_holds: bool
    strictly_decreasing: bool
    #: Corollary 5.2: ``m <= t_0 / c``.
    within_t0_over_c: bool
    #: Corollary 5.3 (only meaningful with a finite lifespan): ``m < ceil(...)``.
    within_cor53_bound: bool
    cor53_bound: int


def verify_structure(
    schedule: Schedule, c: float, lifespan: float = math.inf, tol: float = 1e-9
) -> StructureReport:
    """Check all Section 5.2 laws at once (shape-agnostic report).

    The caller decides which laws *should* hold from the life function's
    shape; the report simply states which do.
    """
    decs = period_decrements(schedule)
    has_pairs = decs.size > 0
    cor53 = (
        max_periods_bound(lifespan, c)
        if (math.isfinite(lifespan) and c > 0)
        else np.iinfo(np.int64).max
    )
    return StructureReport(
        num_periods=schedule.num_periods,
        min_decrement=float(decs.min()) if has_pairs else math.nan,
        max_decrement=float(decs.max()) if has_pairs else math.nan,
        concave_law_holds=satisfies_concave_decrements(schedule, c, tol),
        convex_law_holds=satisfies_convex_decrements(schedule, c, tol),
        strictly_decreasing=bool(np.all(decs > 0)) if has_pairs else True,
        within_t0_over_c=(schedule.num_periods <= schedule[0] / c + tol) if c > 0 else True,
        within_cor53_bound=schedule.num_periods < cor53,
        cor53_bound=int(min(cor53, np.iinfo(np.int64).max)),
    )
