"""The provably-optimal schedules of [3], as quoted in the paper.

Section 4 compares guideline-generated schedules against the ad-hoc but
*provably optimal* schedules derived in

    [3] S.N. Bhatt, F.R.K. Chung, F.T. Leighton, A.L. Rosenberg (1997):
        On optimal strategies for cycle-stealing in networks of workstations.
        IEEE Trans. Comp. 46, 545-557.

for three scenarios.  This module reconstructs those optima from the facts the
paper itself quotes:

* **Uniform risk** ``p = 1 - t/L`` (Section 4.1, d = 1): the optimal schedule
  satisfies ``t_k = t_{k-1} - c`` (eq. 4.1 — identical to the guideline
  recurrence), the number of periods is the *floor* version of Corollary 5.3's
  bound, ``t_0 = sqrt(2cL) + low-order terms`` (eq. 4.5), and "the aggregate
  overhead from an optimal schedule forms an arithmetic sum".  Closing the
  family analytically: stationarity of ``E`` in every ``t_j`` for the
  decrement-``c`` family with ``m`` periods forces
  ``t_0(m) = L/(m+1) + c·m/2``; we return the ``m`` maximizing ``E`` (which
  matches the quoted floor formula — tested).

* **Geometrically decreasing lifespan** ``p_a = a^{-t}`` (Section 4.2): all
  optimal periods are equal, solving the transcendental
  ``t + a^{-t}/ln a = c + 1/ln a``; the schedule is infinite, with closed-form
  expected work ``(t* - c) a^{-t*} / (1 - a^{-t*})``.

* **Geometrically increasing risk** ``p = (2^L - 2^t)/(2^L - 1)``
  (Section 4.3): [3]'s optimal recurrence is
  ``t_{k+1} = log2(t_k - c + 2)`` (vs. the guideline's
  ``log2((t_k - c) ln 2 + 1)``).  The paper quotes no closed boundary
  condition for ``t_0`` ("No explicit value for t_0 is derived in [3]"), so we
  recover the optimum *within the [3]-recurrence family* by a numeric search
  over ``(m, t_0)`` — cross-validated against the unrestricted NLP optimizer
  in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq, minimize_scalar

from ..exceptions import ConvergenceError
from .life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    UniformRisk,
)
from .schedule import Schedule, truncate_infinite

__all__ = [
    "ExactResult",
    "uniform_optimal_num_periods",
    "uniform_decrement_t0",
    "uniform_optimal_schedule",
    "uniform_t0_asymptotic",
    "geometric_decreasing_optimal_period",
    "geometric_decreasing_optimal_work",
    "geometric_decreasing_optimal_schedule",
    "bclr_step_geometric_increasing",
    "geometric_increasing_optimal_schedule",
]


@dataclass(frozen=True)
class ExactResult:
    """An optimal (per [3]) schedule together with its headline quantities."""

    schedule: Schedule
    expected_work: float
    t0: float
    num_periods: int
    #: Human-readable provenance of the construction.
    method: str


# ----------------------------------------------------------------------
# Uniform risk (Section 4.1, d = 1)
# ----------------------------------------------------------------------


def uniform_optimal_num_periods(lifespan: float, c: float) -> int:
    """[3]'s optimal period count: eq. (5.8) "with floors replacing ceilings"
    — ``m = floor(sqrt(2L/c + 1/4) + 1/2)``."""
    if lifespan <= 0 or c <= 0:
        raise ValueError(f"need positive lifespan and overhead, got L={lifespan}, c={c}")
    return max(1, int(math.floor(math.sqrt(2.0 * lifespan / c + 0.25) + 0.5)))


def uniform_decrement_t0(lifespan: float, c: float, m: int) -> float:
    """The stationarity-closed initial period for the decrement-``c`` family.

    For ``t_i = t_0 - i·c`` (i = 0..m-1) under ``p = 1 - t/L``, setting
    ``∂E/∂t_j = 0`` for every ``j`` yields ``t_0 = L/(m+1) + c·m/2``.  At the
    optimal ``m ≈ sqrt(2L/c)`` this gives ``t_0 ≈ sqrt(2cL)``, eq. (4.5).
    """
    if m < 1:
        raise ValueError(f"period count must be >= 1, got {m}")
    return lifespan / (m + 1) + c * m / 2.0


def uniform_optimal_schedule(lifespan: float, c: float) -> ExactResult:
    """The unique optimal schedule for the uniform-risk scenario.

    Sweeps the period count over a window around the floor formula, builds the
    decrement-``c`` schedule with the stationarity-closed ``t_0`` for each, and
    returns the expected-work maximizer.  (The window guards against the rare
    boundary case where floor formula and E-argmax disagree by one.)
    """
    p = UniformRisk(lifespan)
    m_center = uniform_optimal_num_periods(lifespan, c)
    best: ExactResult | None = None
    for m in range(max(1, m_center - 2), m_center + 3):
        t0 = uniform_decrement_t0(lifespan, c, m)
        periods = t0 - c * np.arange(m)
        if np.any(periods <= 0) or periods.sum() > lifespan + 1e-12:
            continue
        schedule = Schedule(periods)
        ew = schedule.expected_work(p, c)
        if best is None or ew > best.expected_work:
            best = ExactResult(schedule, ew, t0, m, method="uniform-decrement-stationarity")
    if best is None:
        raise ConvergenceError(
            f"no feasible decrement schedule for L={lifespan}, c={c} "
            "(overhead too large relative to lifespan)"
        )
    return best


def uniform_t0_asymptotic(lifespan: float, c: float) -> float:
    """Eq. (4.5): the leading term ``sqrt(2cL)`` of the optimal ``t_0``."""
    return math.sqrt(2.0 * c * lifespan)


# ----------------------------------------------------------------------
# Geometrically decreasing lifespan (Section 4.2)
# ----------------------------------------------------------------------


def geometric_decreasing_optimal_period(a: float, c: float) -> float:
    """The equal period length ``t*`` solving ``t + a^{-t}/ln a = c + 1/ln a``.

    [3] proves all optimal periods are equal (the conditional risk under
    ``p_a`` "looks the same at every time instant") and that ``t*`` is the
    unique root in ``(c, c + 1/ln a)``.
    """
    if a <= 1:
        raise ValueError(f"risk factor a must exceed 1, got {a}")
    if c < 0:
        raise ValueError(f"overhead c must be nonnegative, got {c}")
    ln_a = math.log(a)

    def f(t: float) -> float:
        return t + a ** (-t) / ln_a - c - 1.0 / ln_a

    lo, hi = c, c + 1.0 / ln_a
    if c == 0.0:
        # f(0) = 1/ln a - 1/ln a = 0: with free communication every period
        # should be infinitesimal; t* -> 0.
        return 0.0
    f_lo = f(lo)
    if f_lo >= 0.0:  # pragma: no cover - excluded by c > 0 and a > 1
        raise ConvergenceError(f"no interior optimal period for a={a}, c={c}")
    return float(brentq(f, lo, hi, xtol=1e-14, rtol=8.9e-16))


def geometric_decreasing_optimal_work(a: float, c: float) -> float:
    """Closed-form expected work of the infinite equal-period optimum.

    ``E = (t* - c) * sum_{k>=1} a^{-k t*} = (t* - c) a^{-t*} / (1 - a^{-t*})``.
    """
    t_star = geometric_decreasing_optimal_period(a, c)
    if t_star <= c:
        return 0.0
    q = a ** (-t_star)
    return (t_star - c) * q / (1.0 - q)


def geometric_decreasing_optimal_schedule(
    a: float, c: float, tol: float = 1e-12
) -> ExactResult:
    """A finite truncation of the infinite equal-period optimum.

    The truncation's expected-work deficit relative to the closed form is
    below ``tol`` (relative) — see :func:`repro.core.schedule.truncate_infinite`.
    """
    t_star = geometric_decreasing_optimal_period(a, c)
    p = GeometricDecreasingLifespan(a)
    schedule = truncate_infinite((lambda i: t_star), p, c, tol=tol)
    return ExactResult(
        schedule,
        geometric_decreasing_optimal_work(a, c),
        t_star,
        schedule.num_periods,
        method="geomdec-equal-periods (truncated)",
    )


# ----------------------------------------------------------------------
# Geometrically increasing risk (Section 4.3)
# ----------------------------------------------------------------------


def bclr_step_geometric_increasing(t_prev: float, c: float) -> float:
    """[3]'s optimal recurrence for the coffee-break scenario:
    ``t_{k+1} = log2(t_k - c + 2)``.

    Returns ``nan`` when the argument is non-positive (schedule must end).
    """
    arg = t_prev - c + 2.0
    if arg <= 0.0:
        return math.nan
    return math.log2(arg)


def _geometric_increasing_family_schedule(
    t0: float, c: float, lifespan: float, max_periods: int
) -> Schedule:
    """Run the [3] recurrence from ``t0``, stopping at unproductive periods or L."""
    periods = [t0]
    total = t0
    for _ in range(max_periods - 1):
        t_next = bclr_step_geometric_increasing(periods[-1], c)
        if math.isnan(t_next) or t_next <= c or total + t_next > lifespan:
            break
        periods.append(t_next)
        total += t_next
    return Schedule(periods)


def geometric_increasing_optimal_schedule(
    lifespan: float, c: float, max_periods: int = 10_000
) -> ExactResult:
    """Best schedule within [3]'s recurrence family for the coffee-break p.

    The paper quotes [3]'s recurrence but no closed ``t_0`` ("No explicit
    value for t_0 is derived in [3]"), so we maximize expected work over
    ``t_0 ∈ (c, L)`` with the recurrence generating the remaining periods.
    The 1-D objective is continuous between period-count breakpoints; a dense
    grid plus bounded local refinement is robust to the kinks.
    """
    p = GeometricIncreasingRisk(lifespan)
    if lifespan <= c:
        raise ConvergenceError(f"lifespan {lifespan} must exceed overhead {c}")

    def objective(t0: float) -> float:
        if t0 <= c or t0 >= lifespan:
            return 0.0
        schedule = _geometric_increasing_family_schedule(t0, c, lifespan, max_periods)
        return schedule.expected_work(p, c)

    grid = np.linspace(c + 1e-9 * lifespan, lifespan * (1 - 1e-12), 513)
    values = np.array([objective(t) for t in grid])
    k = int(np.argmax(values))
    lo = grid[max(0, k - 1)]
    hi = grid[min(len(grid) - 1, k + 1)]
    res = minimize_scalar(
        lambda t: -objective(t), bounds=(lo, hi), method="bounded",
        options={"xatol": 1e-12},
    )
    t0 = float(res.x) if -res.fun >= values[k] else float(grid[k])
    schedule = _geometric_increasing_family_schedule(t0, c, lifespan, max_periods)
    return ExactResult(
        schedule,
        schedule.expected_work(p, c),
        t0,
        schedule.num_periods,
        method="geominc-bclr-recurrence + t0 search",
    )
