"""Exact discrete-optimal schedules by dynamic programming (Section 6).

The paper closes with: "we have had to translate what is ideally a discrete
problem into a continuous framework ... Can one show that our continuous
guidelines yield valuable discrete analogues?"  This module answers the
question computationally for the data-parallel setting of Section 1: tasks of
uniform duration ``tau``, periods of the form ``c + k·tau`` (whole tasks), and
a finite potential lifespan ``L``.

On a time grid of step ``delta`` (a common divisor of ``c`` and ``tau``), the
optimal expected work from elapsed time ``t`` obeys the Bellman equation

    V(t) = max( 0,  max_{k >= 1, t + c + k tau <= L}
                    k·tau · p(t + c + k·tau) + V(t + c + k·tau) )

solved backward in ``O(N²)`` for ``N = L/delta`` grid points.  The resulting
``V(0)`` is the *exact* optimum over all whole-task schedules — the yardstick
for how much the quantized continuous guidelines leave on the table
(experiment EV-DISC).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..exceptions import InvalidScheduleError
from .life_functions import LifeFunction
from .schedule import Schedule

__all__ = ["DiscreteOptimum", "solve_discrete_optimal"]


@dataclass(frozen=True)
class DiscreteOptimum:
    """The exact optimum over whole-task schedules."""

    schedule: Schedule
    expected_work: float
    #: Tasks shipped in each period.
    task_counts: tuple[int, ...]
    #: Grid step used by the DP.
    delta: float

    @property
    def num_periods(self) -> int:
        return self.schedule.num_periods


def _common_grid(c: float, tau: float, max_denominator: int = 10_000) -> float:
    """A step dividing both c and tau (rational approximation)."""
    if c == 0.0:
        return tau
    fc = Fraction(c).limit_denominator(max_denominator)
    ft = Fraction(tau).limit_denominator(max_denominator)
    g = Fraction(math.gcd(fc.numerator * ft.denominator, ft.numerator * fc.denominator),
                 fc.denominator * ft.denominator)
    return float(g)


def solve_discrete_optimal(
    p: LifeFunction,
    c: float,
    tau: float,
    max_states: int = 200_000,
) -> DiscreteOptimum:
    """Exact DP over whole-task schedules for a finite-lifespan ``p``.

    Parameters
    ----------
    p:
        Life function with a finite lifespan (the DP needs a bounded grid).
    c:
        Per-period communication overhead.
    tau:
        Uniform task duration (the work quantum).
    max_states:
        Guard on the grid size ``L/delta``; refuse rather than thrash.

    Raises
    ------
    InvalidScheduleError
        For unbounded lifespans, non-positive quanta, or oversize grids.
    """
    if not math.isfinite(p.lifespan):
        raise InvalidScheduleError("discrete DP requires a finite lifespan")
    if tau <= 0 or c < 0:
        raise InvalidScheduleError(f"need tau > 0 and c >= 0, got tau={tau}, c={c}")
    delta = _common_grid(c, tau)
    n = int(math.floor(p.lifespan / delta + 1e-9))
    if n < 1:
        raise InvalidScheduleError(
            f"lifespan {p.lifespan} too short for grid step {delta}"
        )
    if n > max_states:
        raise InvalidScheduleError(
            f"grid of {n} states exceeds max_states={max_states}; "
            "coarsen tau or raise the limit"
        )
    c_steps = int(round(c / delta))
    tau_steps = int(round(tau / delta))

    # Survival evaluated once on the whole grid (vectorized).
    grid_times = delta * np.arange(n + 1)
    survival = np.asarray(p(grid_times), dtype=float)

    # V[i] = optimal expected work from grid point i; choice[i] = tasks in the
    # next period (0 = stop).
    values = np.zeros(n + 1)
    choice = np.zeros(n + 1, dtype=np.int64)
    for i in range(n - c_steps - tau_steps, -1, -1):
        # Candidate period ends: j = i + c_steps + k*tau_steps <= n.
        k_max = (n - i - c_steps) // tau_steps
        if k_max < 1:
            continue
        ks = np.arange(1, k_max + 1)
        ends = i + c_steps + ks * tau_steps
        gains = (ks * tau_steps * delta) * survival[ends] + values[ends]
        best = int(np.argmax(gains))
        if gains[best] > 0.0:
            values[i] = float(gains[best])
            choice[i] = int(ks[best])

    # Reconstruct the schedule from the policy.
    counts: list[int] = []
    periods: list[float] = []
    i = 0
    while choice[i] > 0:
        k = int(choice[i])
        counts.append(k)
        periods.append(c + k * tau)
        i += c_steps + k * tau_steps
    if not periods:
        raise InvalidScheduleError(
            f"no whole-task period fits: lifespan {p.lifespan}, c={c}, tau={tau}"
        )
    return DiscreteOptimum(
        schedule=Schedule(periods),
        expected_work=float(values[0]),
        task_counts=tuple(counts),
        delta=delta,
    )
