"""Data-parallel task models (Section 1).

The paper targets computations "that consist of a massive number of
independent repetitive tasks of known durations", as found in many scientific
applications.  Task durations "may vary but are known perfectly", and "the
time for a task includes the marginal cost of transmitting its input and
output data" — which is what keeps the overhead parameter ``c`` independent
of data sizes.

:class:`TaskPool` is engineered for large workloads: FIFO checkout/restore are
amortized O(1) per task (``collections.deque``), and the pending-work total is
maintained incrementally rather than recomputed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import WorkloadError

__all__ = ["Task", "TaskPool"]


@dataclass(frozen=True)
class Task:
    """One indivisible unit of data-parallel work.

    ``duration`` is the task's known compute time *including* its marginal
    input/output transmission cost (the paper's convention).
    """

    task_id: int
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError(f"task {self.task_id} has non-positive duration {self.duration}")


class TaskPool:
    """A mutable FIFO pool of pending tasks shared by a cycle-stealing master.

    Tasks dispatched to a borrowed workstation are *checked out*; a reclaimed
    (killed) period returns its tasks to the front of the pool, a completed
    period commits them.
    """

    __slots__ = ("_tasks", "completed", "_pending_work", "_completed_work")

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: deque[Task] = deque(tasks)
        self.completed: list[Task] = []
        self._pending_work = float(sum(t.duration for t in self._tasks))
        self._completed_work = 0.0

    @classmethod
    def from_durations(cls, durations: Sequence[float] | np.ndarray) -> "TaskPool":
        """Build a pool with ids ``0..n-1`` from an array of durations."""
        return cls(Task(i, float(d)) for i, d in enumerate(durations))

    @property
    def tasks(self) -> list["Task"]:
        """Snapshot of pending tasks in FIFO order (copies; for inspection)."""
        return list(self._tasks)

    @property
    def pending_count(self) -> int:
        return len(self._tasks)

    @property
    def pending_work(self) -> float:
        return self._pending_work

    @property
    def completed_work(self) -> float:
        return self._completed_work

    @property
    def exhausted(self) -> bool:
        return not self._tasks

    def checkout(self, budget: float) -> list[Task]:
        """Remove and return a FIFO prefix of tasks fitting within ``budget``.

        Takes tasks in order while their cumulative duration stays within
        ``budget``; stops at the first task that does not fit (FIFO order is
        preserved so "known durations" stay aligned with dispatch order).
        May return an empty list when even the first task exceeds the budget.
        """
        if budget < 0:
            raise WorkloadError(f"checkout budget must be nonnegative, got {budget}")
        taken: list[Task] = []
        used = 0.0
        tasks = self._tasks
        while tasks and used + tasks[0].duration <= budget + 1e-12:
            task = tasks.popleft()
            taken.append(task)
            used += task.duration
        self._pending_work -= used
        return taken

    def commit(self, tasks: Iterable[Task]) -> None:
        """Mark checked-out tasks as completed (their period survived)."""
        for task in tasks:
            self.completed.append(task)
            self._completed_work += task.duration

    def restore(self, tasks: Sequence[Task]) -> None:
        """Return checked-out tasks to the *front* of the pool (period killed)."""
        # extendleft reverses, so feed it the reversed sequence to preserve order.
        self._tasks.extendleft(reversed(list(tasks)))
        self._pending_work += float(sum(t.duration for t in tasks))

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)
