"""Data-parallel workloads: tasks, pools, generators, and period packing."""

from .generators import bimodal_tasks, jittered_tasks, lognormal_tasks, uniform_tasks
from .packing import PackedPeriod, pack_period
from .tasks import Task, TaskPool

__all__ = [
    "Task",
    "TaskPool",
    "PackedPeriod",
    "pack_period",
    "uniform_tasks",
    "jittered_tasks",
    "lognormal_tasks",
    "bimodal_tasks",
]
