"""Synthetic data-parallel workload generators.

Generators produce duration arrays for :class:`repro.workloads.TaskPool`.
The paper's model assumes durations are *known perfectly*; variability across
tasks is allowed (and exercised by the NOW benchmarks), it just must be known
to the scheduler when packing bundles.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import WorkloadError
from ..types import FloatArray

__all__ = [
    "uniform_tasks",
    "jittered_tasks",
    "lognormal_tasks",
    "bimodal_tasks",
]


def uniform_tasks(n: int, duration: float = 1.0) -> FloatArray:
    """``n`` identical tasks — the canonical data-parallel sweep."""
    if n < 1:
        raise WorkloadError(f"need at least one task, got n={n}")
    if duration <= 0:
        raise WorkloadError(f"duration must be positive, got {duration}")
    return np.full(n, float(duration))


def jittered_tasks(
    n: int, duration: float, jitter: float, rng: np.random.Generator
) -> FloatArray:
    """Uniform tasks with bounded multiplicative jitter in ``[1-j, 1+j]``.

    Models per-datum variation in an otherwise repetitive kernel (e.g. a
    ray-tracing tile with varying scene density).
    """
    if not 0 <= jitter < 1:
        raise WorkloadError(f"jitter must lie in [0, 1), got {jitter}")
    base = uniform_tasks(n, duration)
    return base * rng.uniform(1.0 - jitter, 1.0 + jitter, size=n)


def lognormal_tasks(
    n: int, median: float, sigma: float, rng: np.random.Generator
) -> FloatArray:
    """Right-skewed durations — a few tasks much longer than the median."""
    if median <= 0 or sigma < 0:
        raise WorkloadError(f"need median > 0 and sigma >= 0, got {median}, {sigma}")
    return median * np.exp(rng.normal(0.0, sigma, size=n))


def bimodal_tasks(
    n: int,
    short: float,
    long: float,
    long_fraction: float,
    rng: np.random.Generator,
) -> FloatArray:
    """A mix of short and long tasks (e.g. cheap filters plus full solves)."""
    if not 0 <= long_fraction <= 1:
        raise WorkloadError(f"long_fraction must lie in [0, 1], got {long_fraction}")
    if short <= 0 or long <= 0:
        raise WorkloadError(f"durations must be positive, got {short}, {long}")
    is_long = rng.uniform(size=n) < long_fraction
    return np.where(is_long, float(long), float(short))
