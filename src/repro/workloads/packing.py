"""Packing tasks into cycle-stealing periods.

A period of planned length ``t`` must cover the communication overhead ``c``
plus the durations of the tasks bundled into it, so its *work budget* is
``t - c``.  :func:`pack_period` selects the FIFO bundle; the realized period
length is ``c + (bundle duration)``, which can undershoot the plan when task
granularity is coarse (quantization — see :mod:`repro.simulation.discrete`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import WorkloadError
from .tasks import Task, TaskPool

__all__ = ["PackedPeriod", "pack_period"]


@dataclass(frozen=True)
class PackedPeriod:
    """A dispatched bundle: tasks checked out for one period."""

    tasks: tuple[Task, ...]
    #: Communication overhead charged to this period.
    overhead: float
    #: Planned period length the bundle was packed against.
    planned_length: float

    @property
    def work(self) -> float:
        """Total task time in the bundle (the work banked if it survives)."""
        return float(sum(t.duration for t in self.tasks))

    @property
    def realized_length(self) -> float:
        """``c + bundle work`` — the wall-clock the period actually needs."""
        return self.overhead + self.work

    @property
    def empty(self) -> bool:
        return not self.tasks


def pack_period(pool: TaskPool, planned_length: float, c: float) -> PackedPeriod:
    """Check a FIFO bundle out of ``pool`` to fill a period of planned length.

    The bundle's total duration is at most ``planned_length - c``.  An empty
    bundle (budget below the first task's duration, or an exhausted pool)
    means the period is not worth dispatching.

    Raises
    ------
    WorkloadError
        If ``planned_length <= c`` — such a period could hold no work at all
        and should have been filtered by the scheduler (Proposition 2.1).
    """
    if planned_length <= c:
        raise WorkloadError(
            f"planned period {planned_length} does not exceed overhead {c}; "
            "unproductive periods must not be dispatched"
        )
    bundle = pool.checkout(planned_length - c)
    return PackedPeriod(tasks=tuple(bundle), overhead=c, planned_length=planned_length)
