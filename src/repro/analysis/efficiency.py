"""Efficiency metrics: how close do guideline schedules come to optimal?

The paper's headline claim is that its guidelines are "nearly optimal" and
that the ``t_0`` bracket leaves "a manageably narrow search space".  These
helpers quantify both, against the numeric ground-truth optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.guidelines import GuidelineResult, guideline_schedule
from ..core.life_functions import LifeFunction
from ..core.optimizer import OptimizationResult, optimize_schedule

__all__ = ["EfficiencyReport", "efficiency_report", "work_ratio"]


def work_ratio(candidate_work: float, optimal_work: float) -> float:
    """``E(candidate) / E(optimal)`` with a safe 0/0 convention (ratio 1)."""
    if optimal_work <= 0:
        return 1.0 if candidate_work <= 0 else float("inf")
    return candidate_work / optimal_work


@dataclass(frozen=True)
class EfficiencyReport:
    """Guideline-vs-optimal comparison for one (p, c) instance."""

    guideline: GuidelineResult
    optimal: OptimizationResult

    @property
    def ratio(self) -> float:
        """Fraction of optimal expected work the guideline achieves."""
        return work_ratio(self.guideline.expected_work, self.optimal.expected_work)

    @property
    def t0_in_bracket(self) -> bool:
        """Whether the *numerically optimal* ``t_0`` falls in the paper's bracket."""
        return self.guideline.bracket.contains(self.optimal.t0, rtol=1e-6, atol=1e-9)

    @property
    def bracket_ratio(self) -> float:
        """Width of the ``t_0`` bracket as upper/lower (paper: ≈ factor 2)."""
        return self.guideline.bracket.ratio


def efficiency_report(
    p: LifeFunction,
    c: float,
    t0_strategy: str = "optimize",
    m_max: int | None = None,
) -> EfficiencyReport:
    """Run both the guideline pipeline and the ground-truth optimizer."""
    guideline = guideline_schedule(p, c, t0_strategy=t0_strategy)
    optimal = optimize_schedule(p, c, m_max=m_max)
    return EfficiencyReport(guideline=guideline, optimal=optimal)
