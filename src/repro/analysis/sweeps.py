"""Parameter-sweep utilities shared by the benchmark harness.

:func:`run_sweep` evaluates one callable over a list of parameter dicts.  By
default it runs serially (zero overhead, exact legacy behaviour); pass
``n_jobs`` to fan the sweep out over a process pool, or ``executor`` to reuse
a pool (process, thread, or any other :class:`concurrent.futures.Executor`)
the caller manages.  Results always come back in input order.

For process pools the swept callable must be picklable — i.e. defined at
module level, not a lambda or closure.
"""

from __future__ import annotations

import itertools
import math
import os
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from ..exceptions import SweepError

__all__ = ["SweepPoint", "cartesian_sweep", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One parameter combination and the row it produced."""

    params: dict[str, Any]
    row: Sequence[Any]


def cartesian_sweep(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """All combinations of the named axes, as parameter dicts.

    >>> cartesian_sweep(c=[1, 2], L=[10])
    [{'c': 1, 'L': 10}, {'c': 2, 'L': 10}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[n]) for n in names))
    return [dict(zip(names, combo)) for combo in combos]


class _SweepCall:
    """Picklable ``params -> row`` adapter for ``Executor.map``.

    Worker exceptions are re-raised as :class:`~repro.exceptions.SweepError`
    naming the offending parameter point — ``executor.map`` otherwise
    propagates a bare exception with no hint of *which* of hundreds of sweep
    points failed.
    """

    def __init__(self, fn: Callable[..., Sequence[Any]]) -> None:
        self.fn = fn

    def __call__(self, params: Mapping[str, Any]) -> Sequence[Any]:
        try:
            return self.fn(**params)
        except SweepError:
            raise  # already annotated (e.g. a nested sweep)
        except Exception as exc:
            raise SweepError(
                f"sweep point {dict(params)!r} failed: {exc!r}", params=dict(params)
            ) from exc


def run_sweep(
    params_list: Sequence[Mapping[str, Any]],
    fn: Callable[..., Sequence[Any]],
    n_jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
    chunksize: Optional[int] = None,
) -> list[SweepPoint]:
    """Apply ``fn(**params)`` over a parameter list, collecting rows in order.

    Parameters
    ----------
    n_jobs:
        ``None`` or ``1`` — run serially in this process (default).
        ``-1`` — one worker per available CPU.  Any other positive integer —
        that many process-pool workers.  Ignored when ``executor`` is given.
    executor:
        A caller-managed :class:`concurrent.futures.Executor` to submit to;
        the caller keeps responsibility for shutting it down.
    chunksize:
        Points per worker task (amortizes IPC for cheap ``fn``).  Must be
        ``>= 1`` when given.  Defaults to
        ``ceil(len(params_list) / (4 * workers))`` so each worker sees ~4
        chunks — coarse enough to amortize pickling, fine enough to balance.

    Raises
    ------
    SweepError
        When a worker fails; the message and ``.params`` attribute identify
        the offending parameter point, and ``__cause__`` holds the original
        exception (serial runs; process pools embed its repr).
    """
    if chunksize is not None and chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if executor is None and (n_jobs is None or n_jobs == 1):
        call = _SweepCall(fn)
        return [SweepPoint(dict(params), call(params)) for params in params_list]

    if executor is not None:
        return _run_on_executor(params_list, fn, executor, chunksize, workers=None)

    assert n_jobs is not None
    if n_jobs == -1:
        n_jobs = os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be a positive integer or -1, got {n_jobs}")
    pool = ProcessPoolExecutor(max_workers=n_jobs)
    try:
        return _run_on_executor(params_list, fn, pool, chunksize, workers=n_jobs)
    finally:
        pool.shutdown(wait=True)


def _run_on_executor(
    params_list: Sequence[Mapping[str, Any]],
    fn: Callable[..., Sequence[Any]],
    executor: Executor,
    chunksize: Optional[int],
    workers: Optional[int],
) -> list[SweepPoint]:
    if chunksize is None:
        if workers is None:
            workers = getattr(executor, "_max_workers", None) or (os.cpu_count() or 1)
        chunksize = max(1, math.ceil(len(params_list) / (4 * workers)))
    call = _SweepCall(fn)
    plain = [dict(params) for params in params_list]
    rows = list(executor.map(call, plain, chunksize=chunksize))
    return [SweepPoint(params, row) for params, row in zip(plain, rows)]
