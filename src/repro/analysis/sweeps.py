"""Parameter-sweep utilities shared by the benchmark harness."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = ["SweepPoint", "cartesian_sweep", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One parameter combination and the row it produced."""

    params: dict[str, Any]
    row: Sequence[Any]


def cartesian_sweep(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """All combinations of the named axes, as parameter dicts.

    >>> cartesian_sweep(c=[1, 2], L=[10])
    [{'c': 1, 'L': 10}, {'c': 2, 'L': 10}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[n]) for n in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    params_list: Sequence[Mapping[str, Any]],
    fn: Callable[..., Sequence[Any]],
) -> list[SweepPoint]:
    """Apply ``fn(**params)`` over a parameter list, collecting rows."""
    return [SweepPoint(dict(params), fn(**params)) for params in params_list]
