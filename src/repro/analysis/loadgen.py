"""Load generation for the plan-serving stack (the ``servebench`` harness).

The serving path answers "what schedule should workstation *i* run?" —
under the ROADMAP's heavy-traffic framing that question arrives as a
*stream* of ``(family, c, θ)`` queries with a popularity skew: a few hot
(cluster, workload) configurations dominate, with a long tail of rare
ones.  This module synthesizes such streams and drives the three serving
front ends against the same stream:

* **closed-loop scalar** — one :meth:`PlanServer.serve` call per query,
  back to back (the pre-batching baseline; per-call interpreter overhead
  dominates);
* **closed-loop batched** — the stream chopped into ``batch_size`` chunks
  through :meth:`PlanServer.serve_batch` (one vectorized pass per tier,
  duplicates coalesced);
* **open-loop concurrent** — per-query :meth:`BatchingPlanServer.submit`
  from worker threads, exercising singleflight coalescing and the
  size-or-deadline flush.

Every runner reports wall-clock throughput plus p50/p95/p99 latency, and
:func:`run_servebench` differentially checks that the batched plans are
**bit-identical** to the scalar loop's before reporting a speedup —
a fast wrong answer is worthless.
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from ..core.plancache import PlanCache
from ..core.serving import BatchingPlanServer, PlanServer, ServedPlan
from ..core.sharding import ShardConfig, ShardedPlanServer, build_shard_server
from .tables_precompute import TABLE_FAMILIES, TableServer, default_grids

__all__ = [
    "QueryMix",
    "zipf_query_mix",
    "LoadReport",
    "run_closed_loop_scalar",
    "run_closed_loop_batched",
    "run_closed_loop_sharded",
    "run_open_loop",
    "plans_identical",
    "run_servebench",
    "run_shard_scaling",
]


# ----------------------------------------------------------------------
# Query-mix synthesis
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryMix:
    """A synthetic query stream: parallel ``(family, c, param)`` lists."""

    families: tuple[str, ...]
    cs: tuple[float, ...]
    param_values: tuple[float, ...]
    #: Number of *distinct* queries in the pool the stream draws from.
    distinct: int
    #: Zipf skew exponent used for the popularity weights.
    skew: float

    def __len__(self) -> int:
        return len(self.families)


def zipf_query_mix(
    n: int,
    distinct: int = 64,
    skew: float = 1.1,
    offgrid_fraction: float = 0.5,
    families: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> QueryMix:
    """A Zipf-skewed stream of ``n`` queries over a ``distinct``-point pool.

    The pool is drawn from each family's :func:`default_grids` interior —
    ``offgrid_fraction`` of the points log-uniform *between* grid knots
    (interpolation + polish path) and the rest snapped onto knots (exact
    cell corners).  Pool entry *r* (0-based, shuffled) is then drawn with
    probability proportional to ``(r + 1) ** -skew`` — the standard Zipf
    popularity model, so a handful of hot queries dominate the stream and
    exercise coalescing, while the tail keeps every table busy.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if distinct < 1:
        raise ValueError(f"distinct must be >= 1, got {distinct}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    fams = list(families) if families is not None else sorted(TABLE_FAMILIES)
    for fam in fams:
        if fam not in TABLE_FAMILIES:
            raise ValueError(
                f"unknown family {fam!r}; expected one of {sorted(TABLE_FAMILIES)}"
            )
    rng = np.random.default_rng(seed)

    pool: list[tuple[str, float, float]] = []
    for k in range(distinct):
        fam = fams[k % len(fams)]
        c_grid, v_grid = default_grids(fam)
        if rng.random() < offgrid_fraction:
            # Interior off-grid point, away from the exact bounds.
            c = float(np.exp(rng.uniform(np.log(c_grid[0] * 1.05),
                                         np.log(c_grid[-1] * 0.95))))
            v = float(np.exp(rng.uniform(np.log(v_grid[0] * 1.02),
                                         np.log(v_grid[-1] * 0.98))))
        else:
            c = float(rng.choice(c_grid[1:-1] if len(c_grid) > 2 else c_grid))
            v = float(rng.choice(v_grid[1:-1] if len(v_grid) > 2 else v_grid))
        pool.append((fam, c, v))
    rng.shuffle(pool)

    ranks = np.arange(1, len(pool) + 1, dtype=float)
    weights = ranks ** -float(skew)
    weights /= weights.sum()
    picks = rng.choice(len(pool), size=n, p=weights)

    chosen = [pool[int(i)] for i in picks]
    return QueryMix(
        families=tuple(q[0] for q in chosen),
        cs=tuple(q[1] for q in chosen),
        param_values=tuple(q[2] for q in chosen),
        distinct=len(pool),
        skew=float(skew),
    )


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------


@dataclass
class LoadReport:
    """One runner's outcome over a :class:`QueryMix`."""

    mode: str
    queries: int
    elapsed_seconds: float
    latencies: list[float] = field(repr=False, default_factory=list)
    plans: list[ServedPlan] = field(repr=False, default_factory=list)

    @property
    def throughput_qps(self) -> float:
        return self.queries / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def percentiles(self) -> dict[str, float]:
        """Nearest-rank p50/p95/p99 of the per-query latencies, seconds."""
        if not self.latencies:
            return {"p50": float("nan"), "p95": float("nan"), "p99": float("nan")}
        data = sorted(self.latencies)
        out = {}
        for q in (50, 95, 99):
            rank = max(1, int(np.ceil(q / 100 * len(data))))
            out[f"p{q}"] = float(data[rank - 1])
        return out

    def as_dict(self) -> dict[str, Any]:
        summary = {
            "mode": self.mode,
            "queries": self.queries,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_qps": self.throughput_qps,
        }
        summary.update(self.percentiles())
        return summary


def run_closed_loop_scalar(server: PlanServer, mix: QueryMix) -> LoadReport:
    """Serve the stream one scalar :meth:`PlanServer.serve` at a time."""
    plans: list[ServedPlan] = []
    latencies: list[float] = []
    start = time.perf_counter()
    for fam, c, v in zip(mix.families, mix.cs, mix.param_values):
        q_start = time.perf_counter()
        plans.append(server.serve(fam, c, v))
        latencies.append(time.perf_counter() - q_start)
    elapsed = time.perf_counter() - start
    return LoadReport("scalar", len(mix), elapsed, latencies, plans)


def run_closed_loop_batched(
    server: PlanServer, mix: QueryMix, batch_size: int = 256
) -> LoadReport:
    """Serve the stream through :meth:`PlanServer.serve_batch` chunks."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    plans: list[ServedPlan] = []
    latencies: list[float] = []
    start = time.perf_counter()
    for lo in range(0, len(mix), batch_size):
        hi = min(lo + batch_size, len(mix))
        b_start = time.perf_counter()
        served = server.serve_batch(
            list(mix.families[lo:hi]), list(mix.cs[lo:hi]),
            list(mix.param_values[lo:hi]),
        )
        b_elapsed = time.perf_counter() - b_start
        plans.extend(served)
        # Closed-loop: every query in the chunk waited for the whole chunk.
        latencies.extend([b_elapsed] * (hi - lo))
    elapsed = time.perf_counter() - start
    return LoadReport("batched", len(mix), elapsed, latencies, plans)


def run_closed_loop_sharded(
    server: ShardedPlanServer, mix: QueryMix, batch_size: int = 256
) -> LoadReport:
    """Serve the stream through :meth:`ShardedPlanServer.serve_batch` chunks.

    Same chunking discipline as :func:`run_closed_loop_batched`, so the two
    reports are directly comparable (and their plan streams bit-comparable:
    a cold sharded server must reproduce a cold single-process server's
    output chunk for chunk).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    plans: list[ServedPlan] = []
    latencies: list[float] = []
    start = time.perf_counter()
    for lo in range(0, len(mix), batch_size):
        hi = min(lo + batch_size, len(mix))
        b_start = time.perf_counter()
        served = server.serve_batch(
            list(mix.families[lo:hi]), list(mix.cs[lo:hi]),
            list(mix.param_values[lo:hi]),
        )
        b_elapsed = time.perf_counter() - b_start
        plans.extend(served)
        latencies.extend([b_elapsed] * (hi - lo))
    elapsed = time.perf_counter() - start
    return LoadReport(f"sharded[{server.n_shards}]", len(mix), elapsed, latencies, plans)


def run_open_loop(
    server: PlanServer,
    mix: QueryMix,
    max_batch: int = 256,
    max_delay_ms: float = 2.0,
    concurrency: int = 8,
) -> LoadReport:
    """Drive a :class:`BatchingPlanServer` from ``concurrency`` submitters.

    Each worker thread submits its slice of the stream and blocks on the
    futures, so in-flight duplicates coalesce and distinct queries pile up
    until a size-or-deadline flush — the production front-door shape.
    """
    front = BatchingPlanServer(server, max_batch=max_batch, max_delay_ms=max_delay_ms)
    results: list[Optional[ServedPlan]] = [None] * len(mix)
    latencies: list[float] = [0.0] * len(mix)

    def submit_range(indices: list[int]) -> None:
        for i in indices:
            q_start = time.perf_counter()
            fut = front.submit(mix.families[i], mix.cs[i], mix.param_values[i])
            results[i] = fut.result()
            latencies[i] = time.perf_counter() - q_start

    shards = [list(range(w, len(mix), concurrency)) for w in range(concurrency)]
    start = time.perf_counter()
    with front:
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            for done in [pool.submit(submit_range, s) for s in shards if s]:
                done.result()
    elapsed = time.perf_counter() - start
    plans = [p for p in results if p is not None]
    report = LoadReport("open_loop", len(mix), elapsed, latencies, plans)
    return report


# ----------------------------------------------------------------------
# Differential check + the full benchmark
# ----------------------------------------------------------------------


def plans_identical(a: ServedPlan, b: ServedPlan) -> bool:
    """Bit-identical served plans: t0, periods, E, termination, and source."""
    return (
        a.t0 == b.t0
        and a.expected_work == b.expected_work
        and a.termination == b.termination
        and a.source == b.source
        and np.array_equal(a.schedule.periods, b.schedule.periods)
    )


def _build_server(
    cache_dir: Optional[Union[str, Path]],
    families: Sequence[str],
    grid_points: int,
    search_grid: int,
    engine: str = "numpy",
) -> PlanServer:
    """A :class:`PlanServer` over freshly warmed tables (+ shared cache).

    ``engine="jit"`` routes both the table tier's hetero recurrence and the
    optimizer tier's grid sweep through :mod:`repro.jitkernels` (transparent
    NumPy fallback when numba is unavailable).
    """
    table_server = TableServer(cache_dir=cache_dir, engine=engine)
    grids = {
        fam: tuple(np.geomspace(g[0], g[-1], grid_points) for g in default_grids(fam))
        for fam in families
    }
    table_server.warm(families=list(families), grids=grids, search_grid=search_grid)
    cache = table_server.cache
    if cache is None:
        cache = PlanCache()
        table_server.cache = cache
    return PlanServer(
        table_server=table_server,
        cache=cache,
        search_engine="jit" if engine == "jit" else None,
    )


def run_servebench(
    queries: int = 1024,
    batch_size: int = 256,
    distinct: int = 64,
    skew: float = 1.1,
    seed: int = 0,
    quick: bool = False,
    grid_points: int = 9,
    search_grid: int = 129,
    families: Optional[Sequence[str]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    open_loop: bool = True,
    engine: str = "numpy",
) -> dict[str, Any]:
    """The full servebench record: scalar vs batched vs open-loop.

    ``quick`` shrinks everything to the tier-1 smoke configuration (one
    family, tiny table, short stream) so it finishes in ~2 s; the default
    configuration is the acceptance benchmark (1024-query Zipf mix, batch
    256).  The record carries a ``parity_ok`` flag — batched plans checked
    bit-identical against the scalar loop — and the measured
    ``batch_speedup``; interpret throughput only when parity holds.

    ``engine="jit"`` builds every server over the compiled
    :mod:`repro.jitkernels` engines (NumPy fallback without numba); both the
    scalar and batched runners use it, so the parity gate still compares
    like with like.
    """
    if quick:
        queries = min(queries, 256)
        batch_size = min(batch_size, 64)
        distinct = min(distinct, 16)
        grid_points = min(grid_points, 5)
        search_grid = min(search_grid, 33)
        families = list(families) if families is not None else ["uniform"]
        open_loop = False
    fams = list(families) if families is not None else sorted(TABLE_FAMILIES)

    build_start = time.perf_counter()
    # Independent servers per runner: tier stats, breakers, and cache warmth
    # must not leak between the baseline and the batched run.
    scalar_server = _build_server(cache_dir, fams, grid_points, search_grid, engine)
    batched_server = _build_server(cache_dir, fams, grid_points, search_grid, engine)
    warm_seconds = time.perf_counter() - build_start

    mix = zipf_query_mix(
        queries, distinct=distinct, skew=skew, families=fams, seed=seed
    )

    scalar = run_closed_loop_scalar(scalar_server, mix)
    batched = run_closed_loop_batched(batched_server, mix, batch_size=batch_size)

    mismatches = sum(
        not plans_identical(a, b) for a, b in zip(scalar.plans, batched.plans)
    )
    parity_ok = mismatches == 0 and len(scalar.plans) == len(batched.plans)
    speedup = (
        scalar.elapsed_seconds / batched.elapsed_seconds
        if batched.elapsed_seconds > 0
        else float("inf")
    )

    record: dict[str, Any] = {
        "config": {
            "queries": queries,
            "batch_size": batch_size,
            "distinct": mix.distinct,
            "skew": skew,
            "seed": seed,
            "quick": quick,
            "grid_points": grid_points,
            "search_grid": search_grid,
            "families": fams,
            "engine": engine,
        },
        "warm_seconds": warm_seconds,
        "scalar": scalar.as_dict(),
        "batched": batched.as_dict(),
        "batch_speedup": speedup,
        "parity_ok": bool(parity_ok),
        "parity_mismatches": int(mismatches),
        "batched_stats": {
            "served": batched_server.served,
            "coalesced": batched_server.coalesced,
            "sources": {
                tier: batched_server.tier_stats[tier].hits
                for tier in batched_server.TIERS
            },
        },
    }
    if open_loop:
        open_server = _build_server(cache_dir, fams, grid_points, search_grid, engine)
        open_report = run_open_loop(
            open_server, mix, max_batch=batch_size, max_delay_ms=2.0
        )
        record["open_loop"] = open_report.as_dict()
        record["open_loop"]["coalesced_inflight"] = open_server.coalesced
    return record


# ----------------------------------------------------------------------
# The sharded scaling study
# ----------------------------------------------------------------------


def _warm_table_dir(
    table_dir: Union[str, Path],
    families: Sequence[str],
    grid_points: int,
    search_grid: int,
) -> float:
    """Precompute the guideline tables into ``table_dir``; returns seconds.

    One warm pass shared by the reference server and every worker count —
    the whole point of the mmap'd table files is that N processes map the
    same pages, so the bench must not re-warm per configuration.
    """
    start = time.perf_counter()
    table_server = TableServer(cache_dir=table_dir, cache=PlanCache())
    grids = {
        fam: tuple(np.geomspace(g[0], g[-1], grid_points) for g in default_grids(fam))
        for fam in families
    }
    table_server.warm(families=list(families), grids=grids, search_grid=search_grid)
    return time.perf_counter() - start


def run_shard_scaling(
    queries: int = 1024,
    batch_size: int = 256,
    distinct: int = 64,
    skew: float = 1.1,
    seed: int = 0,
    quick: bool = False,
    grid_points: int = 9,
    search_grid: int = 129,
    families: Optional[Sequence[str]] = None,
    table_dir: Optional[Union[str, Path]] = None,
    workers: Sequence[int] = (1, 2, 4, 8),
    mp_method: Optional[str] = None,
    request_timeout: float = 120.0,
) -> dict[str, Any]:
    """The sharded scaling curve, bit-parity gated per worker count.

    Runs the acceptance mix through a **single-process** reference server
    (memory-only plan cache over the shared mmap'd tables — the exact stack
    every shard worker builds), then through a :class:`ShardedPlanServer`
    at each ``workers`` count, comparing the plan streams bit for bit.  The
    record's ``parity_ok`` is the AND over all counts; throughput numbers
    are meaningless when it is false.

    ``scaling_vs_one`` reports each count's aggregate qps relative to the
    sharded ``workers=1`` run (the honest baseline: it pays the same IPC
    tax), and ``cpu_count`` records how many cores the host could actually
    offer — on a single-core box the curve is flat by physics, which is why
    the CLI's scaling gate (``--min-scaling``) is opt-in while the parity
    gate is not.
    """
    if quick:
        queries = min(queries, 256)
        batch_size = min(batch_size, 64)
        distinct = min(distinct, 16)
        grid_points = min(grid_points, 5)
        search_grid = min(search_grid, 33)
        families = list(families) if families is not None else ["uniform"]
    fams = list(families) if families is not None else sorted(TABLE_FAMILIES)
    counts = sorted({int(w) for w in workers})
    if not counts or counts[0] < 1:
        raise ValueError(f"workers must be positive, got {list(workers)}")

    tmp: Optional[tempfile.TemporaryDirectory] = None
    if table_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-shardbench-")
        table_dir = tmp.name
    try:
        warm_seconds = _warm_table_dir(table_dir, fams, grid_points, search_grid)
        mix = zipf_query_mix(
            queries, distinct=distinct, skew=skew, families=fams, seed=seed
        )

        reference_server = build_shard_server(
            ShardConfig(shard=0, n_shards=1, table_dir=str(table_dir))
        )
        reference = run_closed_loop_batched(
            reference_server, mix, batch_size=batch_size
        )

        scaling: list[dict[str, Any]] = []
        qps_by_count: dict[int, float] = {}
        all_parity = True
        for n_workers in counts:
            with ShardedPlanServer(
                workers=n_workers,
                table_dir=table_dir,
                mp_method=mp_method,
                request_timeout=request_timeout,
            ) as sharded:
                report = run_closed_loop_sharded(sharded, mix, batch_size=batch_size)
                stats = sharded.stats_dict()
            mismatches = sum(
                not plans_identical(a, b)
                for a, b in zip(reference.plans, report.plans)
            )
            parity_ok = (
                mismatches == 0
                and len(report.plans) == len(reference.plans)
                and stats["fallback_lanes"] == 0
            )
            all_parity = all_parity and parity_ok
            qps_by_count[n_workers] = report.throughput_qps
            entry = report.as_dict()
            entry.update(
                workers=n_workers,
                parity_ok=bool(parity_ok),
                parity_mismatches=int(mismatches),
                fallback_lanes=stats["fallback_lanes"],
                restarts=stats["restarts"],
                worker_failures=stats["worker_failures"],
            )
            scaling.append(entry)

        base_qps = qps_by_count[counts[0]]
        scaling_vs_one = {
            str(n): (qps_by_count[n] / base_qps if base_qps > 0 else float("inf"))
            for n in counts
        }
        return {
            "config": {
                "queries": queries,
                "batch_size": batch_size,
                "distinct": mix.distinct,
                "skew": skew,
                "seed": seed,
                "quick": quick,
                "grid_points": grid_points,
                "search_grid": search_grid,
                "families": fams,
                "workers": counts,
                "mp_method": mp_method,
            },
            "cpu_count": os.cpu_count(),
            "warm_seconds": warm_seconds,
            "single_process": reference.as_dict(),
            "scaling": scaling,
            "scaling_vs_one": scaling_vs_one,
            "best_scaling": max(scaling_vs_one.values()),
            "parity_ok": bool(all_parity),
        }
    finally:
        if tmp is not None:
            tmp.cleanup()
