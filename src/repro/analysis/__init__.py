"""Analysis helpers: efficiency ratios, sweeps, robustness, table formatting."""

from .efficiency import EfficiencyReport, efficiency_report, work_ratio
from .robustness import (
    RobustnessPoint,
    misestimation_ratio,
    parameter_error_sweep,
    sampling_error_sweep,
)
from .sweeps import SweepPoint, cartesian_sweep, run_sweep
from .tables import format_table, print_table

__all__ = [
    "EfficiencyReport",
    "efficiency_report",
    "work_ratio",
    "RobustnessPoint",
    "misestimation_ratio",
    "parameter_error_sweep",
    "sampling_error_sweep",
    "SweepPoint",
    "cartesian_sweep",
    "run_sweep",
    "format_table",
    "print_table",
]
