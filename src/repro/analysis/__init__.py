"""Analysis helpers: efficiency ratios, sweeps, robustness, table formatting."""

from .chaos import (
    FAULT_CLASSES,
    ChaosCell,
    ChaosConfig,
    build_fault_plan,
    chaos_matrix,
    report_to_json,
    run_chaos_cell,
)
from .efficiency import EfficiencyReport, efficiency_report, work_ratio
from .loadgen import (
    LoadReport,
    QueryMix,
    plans_identical,
    run_closed_loop_batched,
    run_closed_loop_scalar,
    run_open_loop,
    run_servebench,
    zipf_query_mix,
)
from .robustness import (
    RobustnessPoint,
    misestimation_ratio,
    parameter_error_sweep,
    sampling_error_sweep,
)
from .sweeps import SweepPoint, cartesian_sweep, run_sweep
from .tables import format_table, print_table
from .tables_precompute import (
    TABLE_FAMILIES,
    TABLE_SCHEMA_VERSION,
    GuidelineTable,
    PlanAnswer,
    TableServer,
    default_grids,
    load_table,
    make_family_life,
    precompute_table,
    save_table,
    table_path,
)

__all__ = [
    "FAULT_CLASSES",
    "ChaosCell",
    "ChaosConfig",
    "build_fault_plan",
    "chaos_matrix",
    "report_to_json",
    "run_chaos_cell",
    "EfficiencyReport",
    "efficiency_report",
    "work_ratio",
    "LoadReport",
    "QueryMix",
    "plans_identical",
    "run_closed_loop_batched",
    "run_closed_loop_scalar",
    "run_open_loop",
    "run_servebench",
    "zipf_query_mix",
    "RobustnessPoint",
    "misestimation_ratio",
    "parameter_error_sweep",
    "sampling_error_sweep",
    "SweepPoint",
    "cartesian_sweep",
    "run_sweep",
    "format_table",
    "print_table",
    "TABLE_FAMILIES",
    "TABLE_SCHEMA_VERSION",
    "GuidelineTable",
    "PlanAnswer",
    "TableServer",
    "default_grids",
    "load_table",
    "make_family_life",
    "precompute_table",
    "save_table",
    "table_path",
]
