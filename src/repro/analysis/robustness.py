"""Robustness of the guidelines to misestimated life functions.

The paper: the results "extend easily to situations wherein this knowledge is
approximate, garnered possibly from trace data."  This module quantifies
that: schedule with a *wrong* life function ``p_hat``, evaluate the schedule's
expected work under the *true* ``p``, and report the fraction of the
correctly-informed optimum retained.

Two error models are provided, matching how estimates actually go wrong:

* :func:`parameter_error_sweep` — systematic bias (e.g. the estimated
  half-life or lifespan off by ±x%);
* :func:`sampling_error_sweep` — statistical noise (fit from n samples, as a
  function of n).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.guidelines import guideline_schedule
from ..core.life_functions import LifeFunction
from ..core.optimizer import optimize_schedule
from ..types import FloatArray

__all__ = [
    "RobustnessPoint",
    "misestimation_ratio",
    "parameter_error_sweep",
    "sampling_error_sweep",
]


@dataclass(frozen=True)
class RobustnessPoint:
    """One (error level → retained efficiency) measurement."""

    error: float
    ratio: float
    t0_used: float


def misestimation_ratio(
    p_true: LifeFunction,
    p_hat: LifeFunction,
    c: float,
    optimal_work: float | None = None,
) -> tuple[float, float]:
    """Efficiency retained when scheduling with ``p_hat`` against ``p_true``.

    Returns ``(ratio, t0_used)`` where ``ratio = E_true(S_hat) / E_true(S*)``.

    When the true-optimal expected work is zero (no schedule can bank
    anything — e.g. the overhead ``c`` meets or exceeds the usable
    lifespan), no efficiency can be retained: the ratio is reported as
    ``0.0`` with a :class:`RuntimeWarning` rather than dividing by zero.
    """
    schedule_hat = guideline_schedule(p_hat, c, grid=65).schedule
    achieved = schedule_hat.expected_work(p_true, c)
    if optimal_work is None:
        optimal_work = optimize_schedule(p_true, c).expected_work
    if optimal_work <= 0:
        warnings.warn(
            f"true-optimal expected work is {optimal_work} (c={c} leaves no "
            "productive schedule); reporting misestimation ratio 0.0",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0.0, float(schedule_hat.periods[0])
    ratio = achieved / optimal_work
    return ratio, float(schedule_hat.periods[0])


def parameter_error_sweep(
    p_true: LifeFunction,
    make_estimate: Callable[[float], LifeFunction],
    c: float,
    errors: Sequence[float] = (-0.5, -0.25, -0.1, 0.0, 0.1, 0.25, 0.5),
) -> list[RobustnessPoint]:
    """Sweep systematic estimation error.

    ``make_estimate(eps)`` builds the mis-parameterized life function for a
    relative error ``eps`` (e.g. lifespan scaled by ``1 + eps``); ``eps = 0``
    must return (an equivalent of) the truth.
    """
    optimal = optimize_schedule(p_true, c).expected_work
    points = []
    for eps in errors:
        ratio, t0 = misestimation_ratio(p_true, make_estimate(eps), c, optimal)
        points.append(RobustnessPoint(error=float(eps), ratio=ratio, t0_used=t0))
    return points


def sampling_error_sweep(
    p_true: LifeFunction,
    fitter: Callable[[FloatArray], LifeFunction],
    c: float,
    sample_sizes: Sequence[int] = (10, 30, 100, 300, 1000),
    replications: int = 10,
    rng: np.random.Generator | None = None,
) -> list[RobustnessPoint]:
    """Sweep statistical estimation error: fit from n samples, n growing.

    Each point averages ``replications`` independent fits; ``error`` records
    ``n`` (cast to float) rather than a relative bias.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    optimal = optimize_schedule(p_true, c).expected_work
    points = []
    for n in sample_sizes:
        ratios = []
        t0s = []
        for _ in range(replications):
            data = p_true.sample_reclaim_times(rng, n)
            try:
                p_hat = fitter(data)
                ratio, t0 = misestimation_ratio(p_true, p_hat, c, optimal)
            except Exception:
                ratio, t0 = 0.0, float("nan")
            ratios.append(ratio)
            t0s.append(t0)
        points.append(
            RobustnessPoint(
                error=float(n),
                ratio=float(np.mean(ratios)),
                t0_used=float(np.nanmean(t0s)),
            )
        )
    return points
