"""Precomputed guideline tables: sweep once, serve schedules forever.

For each Section 4 closed-form family the optimal initial period is a smooth,
monotone function ``t0*(c, θ)`` of the overhead and the family parameter
(``L`` for the finite-lifespan families, ``a`` for the geometric-decreasing
one).  This module sweeps a ``(c, θ)`` grid **once** — through
:func:`repro.analysis.sweeps.run_sweep`'s process-pool fan-out, with every
grid point riding the plan cache — persists the resulting ``t0*`` / ``E*``
tables, and then answers arbitrary off-grid queries by

1. bilinear (monotone) interpolation of ``t0*`` inside the containing cell,
2. one cheap batch-recurrence regeneration: a bounded 1-D polish of ``t0``
   over the cell's corner bracket (each evaluation is a single Corollary 3.1
   recurrence walk), then the final :func:`generate_schedule` call;
3. falling back to the full optimizer only outside the table's bounds.

The served schedule is exact for its ``t0`` (the recurrence is
deterministic), and the polish step keeps the expected work within ~1e-9
relative of the full :func:`~repro.core.optimizer.optimize_t0_via_recurrence`
search — see ``benchmarks/bench_plan_cache.py`` for the measured numbers.

Tables live as ``.npz`` files under ``<cache_dir>/tables/v<schema>/``;
:func:`load_table` is corruption-tolerant (a truncated or garbage file reads
as "no table" and queries fall back to the optimizer).
"""

from __future__ import annotations

import math
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Union

import numpy as np
from scipy.optimize import minimize_scalar

from ..core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    LifeFunction,
    PolynomialRisk,
    UniformRisk,
)
from ..core.optimizer import optimize_t0_via_recurrence
from ..core.plancache import PlanCache, default_plan_cache
from ..core.recurrence import RecurrenceOutcome, generate_schedule
from ..core.schedule import Schedule
from ..exceptions import CycleStealingError, PlanCacheError
from ..types import FloatArray
from .sweeps import run_sweep

__all__ = [
    "TABLE_SCHEMA_VERSION",
    "TABLE_FAMILIES",
    "GuidelineTable",
    "PlanAnswer",
    "TableServer",
    "make_family_life",
    "default_grids",
    "precompute_table",
    "table_path",
    "save_table",
    "load_table",
]

#: Version of the on-disk table schema (bump on incompatible layout changes).
TABLE_SCHEMA_VERSION = 1

#: family name -> (parameter swept by the table, fixed extra parameters).
TABLE_FAMILIES: dict[str, tuple[str, dict[str, float]]] = {
    "uniform": ("L", {}),
    "poly": ("L", {"d": 3.0}),
    "geomdec": ("a", {}),
    "geominc": ("L", {}),
}


def make_family_life(
    family: str, param_value: float, fixed: Optional[Mapping[str, float]] = None
) -> LifeFunction:
    """Instantiate a Section 4 family from its table coordinates."""
    fixed = dict(fixed or ())
    if family == "uniform":
        return UniformRisk(param_value)
    if family == "poly":
        return PolynomialRisk(int(fixed.get("d", 3.0)), param_value)
    if family == "geomdec":
        return GeometricDecreasingLifespan(param_value)
    if family == "geominc":
        return GeometricIncreasingRisk(param_value)
    raise PlanCacheError(f"unknown table family {family!r}; expected one of "
                         f"{sorted(TABLE_FAMILIES)}")


def default_grids(family: str) -> tuple[FloatArray, FloatArray]:
    """The default ``(c_grid, param_grid)`` for one family's table.

    Log-spaced: ``t0*`` varies like a power of both coordinates for every
    Section 4 family, so geometric spacing equalizes the relative
    interpolation error across the table.
    """
    if family in ("uniform", "poly"):
        return np.geomspace(0.5, 8.0, 17), np.geomspace(50.0, 1600.0, 17)
    if family == "geomdec":
        return np.geomspace(0.1, 1.5, 17), np.geomspace(1.02, 2.5, 17)
    if family == "geominc":
        return np.geomspace(0.25, 4.0, 17), np.geomspace(10.0, 120.0, 17)
    raise PlanCacheError(f"unknown table family {family!r}")


@dataclass(frozen=True)
class GuidelineTable:
    """A precomputed ``t0*`` / ``E*`` grid for one closed-form family."""

    family: str
    param_name: str
    fixed: tuple[tuple[str, float], ...]
    c_grid: FloatArray
    param_grid: FloatArray
    #: Optimal initial periods, shape ``(len(c_grid), len(param_grid))``.
    t0: FloatArray
    #: Expected work at the optimum, same shape.
    expected_work: FloatArray
    #: Periods in the generated schedule, same shape.
    num_periods: np.ndarray
    #: t0-search resolution / bracket widening the sweep used.
    search_grid: int = 129
    search_widen: float = 1.5
    schema_version: int = TABLE_SCHEMA_VERSION

    @property
    def shape(self) -> tuple[int, int]:
        return (int(self.c_grid.size), int(self.param_grid.size))

    def contains(self, c: float, param_value: float) -> bool:
        """Whether ``(c, θ)`` lies inside the table's bounds."""
        return bool(
            self.c_grid[0] <= c <= self.c_grid[-1]
            and self.param_grid[0] <= param_value <= self.param_grid[-1]
        )

    def cell(self, c: float, param_value: float) -> tuple[int, int]:
        """Indices ``(i, j)`` of the containing cell's lower-left corner."""
        i = int(np.clip(np.searchsorted(self.c_grid, c) - 1, 0, self.c_grid.size - 2))
        j = int(
            np.clip(np.searchsorted(self.param_grid, param_value) - 1,
                    0, self.param_grid.size - 2)
        )
        return i, j

    def interpolate_t0(self, c: float, param_value: float) -> tuple[float, float, float]:
        """Bilinear ``t0`` estimate plus the cell's corner bracket ``(lo, hi)``.

        Bilinear interpolation of a grid that is monotone in each coordinate
        stays inside the corner envelope, so ``[min corner, max corner]`` is
        a sound (and tight) polish bracket.  Raises
        :class:`~repro.exceptions.CycleStealingError` on cells with missing
        (NaN) corners — callers fall back to the full optimizer.
        """
        i, j = self.cell(c, param_value)
        corners = self.t0[i : i + 2, j : j + 2]
        if not np.all(np.isfinite(corners)):
            raise CycleStealingError(
                f"table cell ({i}, {j}) for family {self.family!r} has missing corners"
            )
        wc = (c - self.c_grid[i]) / (self.c_grid[i + 1] - self.c_grid[i])
        wp = (param_value - self.param_grid[j]) / (
            self.param_grid[j + 1] - self.param_grid[j]
        )
        top = corners[0, 0] * (1 - wp) + corners[0, 1] * wp
        bot = corners[1, 0] * (1 - wp) + corners[1, 1] * wp
        t0 = float(top * (1 - wc) + bot * wc)
        return t0, float(np.min(corners)), float(np.max(corners))


@dataclass(frozen=True)
class PlanAnswer:
    """A served schedule plus provenance (which tier answered)."""

    family: str
    c: float
    param_value: float
    t0: float
    schedule: Schedule
    expected_work: float
    #: ``"table"`` (interpolated + polished) or ``"optimizer"`` (fallback).
    source: str
    termination: str = ""


# ----------------------------------------------------------------------
# Sweep (precomputation)
# ----------------------------------------------------------------------


def _table_point(
    family: str,
    c: float,
    param_value: float,
    fixed: Optional[dict] = None,
    search_grid: int = 129,
    search_widen: float = 1.5,
    cache_dir: Optional[str] = None,
) -> list:
    """One grid point: module-level so process pools can pickle it.

    Rides the process-default plan cache (sharing ``cache_dir``'s disk tier
    across workers and re-runs), so re-warming a table is nearly free.
    """
    cache = default_plan_cache(cache_dir) if cache_dir else None
    p = make_family_life(family, param_value, fixed)
    try:
        t0, outcome, ew = optimize_t0_via_recurrence(
            p, c, grid=search_grid, widen=search_widen, cache=cache
        )
    except CycleStealingError:
        return [math.nan, math.nan, 0]
    return [t0, ew, outcome.schedule.num_periods]


def precompute_table(
    family: str,
    c_grid: Optional[FloatArray] = None,
    param_grid: Optional[FloatArray] = None,
    fixed: Optional[Mapping[str, float]] = None,
    search_grid: int = 129,
    search_widen: float = 1.5,
    n_jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> GuidelineTable:
    """Sweep the ``(c, θ)`` grid once and assemble the guideline table.

    ``n_jobs`` fans the sweep out over a process pool (see
    :func:`~repro.analysis.sweeps.run_sweep`); each point's ``t_0`` search
    rides the plan cache under ``cache_dir`` when one is given.
    """
    param_name, default_fixed = TABLE_FAMILIES[family]
    fixed = dict(fixed if fixed is not None else default_fixed)
    if c_grid is None or param_grid is None:
        default_c, default_param = default_grids(family)
        c_grid = default_c if c_grid is None else c_grid
        param_grid = default_param if param_grid is None else param_grid
    c_grid = np.asarray(c_grid, dtype=float)
    param_grid = np.asarray(param_grid, dtype=float)
    if c_grid.size < 2 or param_grid.size < 2:
        raise PlanCacheError("table grids need at least 2 points per axis")
    if np.any(np.diff(c_grid) <= 0) or np.any(np.diff(param_grid) <= 0):
        raise PlanCacheError("table grids must be strictly increasing")

    params_list = [
        {
            "family": family,
            "c": float(c),
            "param_value": float(v),
            "fixed": fixed,
            "search_grid": search_grid,
            "search_widen": search_widen,
            "cache_dir": str(cache_dir) if cache_dir is not None else None,
        }
        for c in c_grid
        for v in param_grid
    ]
    points = run_sweep(params_list, _table_point, n_jobs=n_jobs)
    rows = np.asarray([pt.row for pt in points], dtype=float)
    shape = (c_grid.size, param_grid.size)
    return GuidelineTable(
        family=family,
        param_name=param_name,
        fixed=tuple(sorted((k, float(v)) for k, v in fixed.items())),
        c_grid=c_grid,
        param_grid=param_grid,
        t0=rows[:, 0].reshape(shape),
        expected_work=rows[:, 1].reshape(shape),
        num_periods=rows[:, 2].astype(int).reshape(shape),
        search_grid=search_grid,
        search_widen=search_widen,
    )


# ----------------------------------------------------------------------
# Persistence (npz, corruption-tolerant)
# ----------------------------------------------------------------------


def table_path(cache_dir: Union[str, Path], family: str) -> Path:
    """The conventional location of one family's table."""
    return Path(cache_dir) / "tables" / f"v{TABLE_SCHEMA_VERSION}" / f"{family}.npz"


def save_table(table: GuidelineTable, path: Union[str, Path]) -> Path:
    """Persist a table atomically (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".npz.tmp")
    fixed_names = [k for k, _ in table.fixed]
    fixed_values = np.asarray([v for _, v in table.fixed], dtype=float)
    with open(tmp, "wb") as fh:
        np.savez(
            fh,
            schema_version=np.asarray([table.schema_version]),
            family=np.asarray([table.family]),
            param_name=np.asarray([table.param_name]),
            fixed_names=np.asarray(fixed_names, dtype="U32"),
            fixed_values=fixed_values,
            c_grid=table.c_grid,
            param_grid=table.param_grid,
            t0=table.t0,
            expected_work=table.expected_work,
            num_periods=table.num_periods,
            search=np.asarray([float(table.search_grid), table.search_widen]),
        )
    tmp.replace(path)
    return path


def load_table(path: Union[str, Path]) -> Optional[GuidelineTable]:
    """Load a table; ``None`` for missing, corrupt, or wrong-schema files."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            if int(data["schema_version"][0]) != TABLE_SCHEMA_VERSION:
                return None
            fixed = tuple(
                (str(k), float(v))
                for k, v in zip(data["fixed_names"], data["fixed_values"])
            )
            table = GuidelineTable(
                family=str(data["family"][0]),
                param_name=str(data["param_name"][0]),
                fixed=fixed,
                c_grid=np.asarray(data["c_grid"], dtype=float),
                param_grid=np.asarray(data["param_grid"], dtype=float),
                t0=np.asarray(data["t0"], dtype=float),
                expected_work=np.asarray(data["expected_work"], dtype=float),
                num_periods=np.asarray(data["num_periods"], dtype=int),
                search_grid=int(data["search"][0]),
                search_widen=float(data["search"][1]),
            )
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
        return None
    if table.t0.shape != table.shape or table.expected_work.shape != table.shape:
        return None
    return table


# ----------------------------------------------------------------------
# Serving
# ----------------------------------------------------------------------


class TableServer:
    """Serve near-optimal schedules from precomputed tables in ~O(m) time.

    Holds one :class:`GuidelineTable` per family (loaded lazily from
    ``cache_dir``), answers :meth:`query` by interpolate + polish, and falls
    back to the full optimizer — through the shared plan cache — outside
    table bounds.  Query latency and source mix are tracked in ``counters``.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        cache: Optional[PlanCache] = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.cache = cache
        self._tables: dict[str, Optional[GuidelineTable]] = {}
        self.counters: dict[str, Any] = {"table": 0, "optimizer": 0, "seconds": 0.0}

    def add_table(self, table: GuidelineTable) -> None:
        """Register an in-memory table (used by tests and warm pipelines)."""
        self._tables[table.family] = table

    def table(self, family: str) -> Optional[GuidelineTable]:
        """The family's table, loading from ``cache_dir`` on first use."""
        if family not in self._tables:
            loaded = None
            if self.cache_dir is not None:
                loaded = load_table(table_path(self.cache_dir, family))
            self._tables[family] = loaded
        return self._tables[family]

    def query(
        self,
        family: str,
        c: float,
        param_value: float,
        polish: bool = True,
    ) -> PlanAnswer:
        """A near-optimal schedule for family ``(c, θ)``, served fast.

        Inside table bounds: bilinear ``t0`` interpolation, an optional
        bounded polish over the cell's corner bracket (recurrence-walk
        evaluations only), and one final schedule regeneration.  Outside (or
        with no table): the full ``t_0`` optimizer, riding ``self.cache``.
        """
        import time

        start = time.perf_counter()
        fixed = dict(TABLE_FAMILIES[family][1])
        table = self.table(family)
        if table is not None:
            fixed = dict(table.fixed)
        p = make_family_life(family, param_value, fixed)
        answer: Optional[PlanAnswer] = None
        if table is not None and table.contains(c, param_value):
            try:
                answer = self._serve_from_table(table, p, family, c, param_value, polish)
            except CycleStealingError:
                answer = None  # NaN cell or degenerate bracket: fall back
        if answer is None:
            t0, outcome, ew = optimize_t0_via_recurrence(p, c, cache=self.cache)
            answer = PlanAnswer(
                family=family, c=c, param_value=param_value, t0=t0,
                schedule=outcome.schedule, expected_work=ew,
                source="optimizer", termination=outcome.termination.value,
            )
        self.counters[answer.source] += 1
        self.counters["seconds"] += time.perf_counter() - start
        return answer

    def serve_from_table(
        self,
        family: str,
        c: float,
        param_value: float,
        polish: bool = True,
    ) -> PlanAnswer:
        """Serve **strictly** from the precomputed table — no optimizer fallback.

        The table tier of the resilient serving chain
        (:class:`repro.core.serving.PlanServer`) needs tier isolation: a
        query the table cannot answer must *raise* so the chain can fall
        through, rather than silently invoking the optimizer.

        Raises
        ------
        CycleStealingError
            When the family has no (loadable) table, ``(c, θ)`` lies outside
            its bounds, or the containing cell has missing corners.
        """
        import time

        start = time.perf_counter()
        table = self.table(family)
        if table is None:
            raise CycleStealingError(
                f"no precomputed table for family {family!r} "
                f"(cache_dir={self.cache_dir})"
            )
        if not table.contains(c, param_value):
            raise CycleStealingError(
                f"query (c={c}, {table.param_name}={param_value}) lies outside "
                f"the {family!r} table bounds"
            )
        p = make_family_life(family, param_value, dict(table.fixed))
        answer = self._serve_from_table(table, p, family, c, param_value, polish)
        self.counters["table"] += 1
        self.counters["seconds"] += time.perf_counter() - start
        return answer

    def _serve_from_table(
        self,
        table: GuidelineTable,
        p: LifeFunction,
        family: str,
        c: float,
        param_value: float,
        polish: bool,
    ) -> PlanAnswer:
        t0_est, lo, hi = table.interpolate_t0(c, param_value)
        # Pad the corner bracket: the true t0*(c, θ) is monotone but the
        # corners bound it only up to grid curvature.
        pad = 0.08 * max(hi - lo, 0.0) + 1e-6 * t0_est
        lo = max(lo - pad, c * (1 + 1e-9))
        hi = hi + pad
        if math.isfinite(p.lifespan):
            hi = min(hi, p.lifespan * (1 - 1e-12))
        t0 = min(max(t0_est, lo), hi)
        if polish and hi > lo:
            evals: dict[float, tuple[Optional[RecurrenceOutcome], float]] = {}

            def scored(t: float) -> tuple[Optional[RecurrenceOutcome], float]:
                if t not in evals:
                    try:
                        out = generate_schedule(p, c, t)
                    except CycleStealingError:
                        evals[t] = (None, -math.inf)
                    else:
                        evals[t] = (out, out.schedule.expected_work(p, c))
                return evals[t]

            res = minimize_scalar(
                lambda t: -scored(float(t))[1],
                bounds=(lo, hi),
                method="bounded",
                # E is locally quadratic in t0: 1e-8 relative xatol keeps the
                # served E within ~1e-15 relative of the true optimum.
                options={"xatol": 1e-8 * max(1.0, t0_est)},
            )
            if -float(res.fun) >= scored(t0)[1]:
                t0 = float(res.x)
            outcome, ew = scored(t0)
        else:
            outcome = generate_schedule(p, c, t0)
            ew = outcome.schedule.expected_work(p, c)
        if outcome is None:
            raise CycleStealingError(
                f"table-served t0 bracket [{lo:.6g}, {hi:.6g}] produced no schedule"
            )
        return PlanAnswer(
            family=family, c=c, param_value=param_value, t0=t0,
            schedule=outcome.schedule, expected_work=ew,
            source="table", termination=outcome.termination.value,
        )

    def warm(
        self,
        families: Optional[list[str]] = None,
        n_jobs: Optional[int] = None,
        search_grid: int = 129,
        search_widen: float = 1.5,
        grids: Optional[Mapping[str, tuple[FloatArray, FloatArray]]] = None,
    ) -> dict[str, GuidelineTable]:
        """Precompute (and persist, when ``cache_dir`` is set) tables.

        Returns the freshly built tables by family name.
        """
        built: dict[str, GuidelineTable] = {}
        for family in families or list(TABLE_FAMILIES):
            c_grid = param_grid = None
            if grids and family in grids:
                c_grid, param_grid = grids[family]
            table = precompute_table(
                family,
                c_grid=c_grid,
                param_grid=param_grid,
                search_grid=search_grid,
                search_widen=search_widen,
                n_jobs=n_jobs,
                cache_dir=self.cache_dir,
            )
            if self.cache_dir is not None:
                save_table(table, table_path(self.cache_dir, family))
            self.add_table(table)
            built[family] = table
        return built
