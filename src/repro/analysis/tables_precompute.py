"""Precomputed guideline tables: sweep once, serve schedules forever.

For each Section 4 closed-form family the optimal initial period is a smooth,
monotone function ``t0*(c, θ)`` of the overhead and the family parameter
(``L`` for the finite-lifespan families, ``a`` for the geometric-decreasing
one).  This module sweeps a ``(c, θ)`` grid **once** — through
:func:`repro.analysis.sweeps.run_sweep`'s process-pool fan-out, with every
grid point riding the plan cache — persists the resulting ``t0*`` / ``E*``
tables, and then answers arbitrary off-grid queries by

1. bilinear (monotone) interpolation of ``t0*`` inside the containing cell,
2. one cheap batch-recurrence regeneration: a bounded 1-D polish of ``t0``
   over the cell's corner bracket (each evaluation is a single Corollary 3.1
   recurrence walk), then the final :func:`generate_schedule` call;
3. falling back to the full optimizer only outside the table's bounds.

The served schedule is exact for its ``t0`` (the recurrence is
deterministic), and the polish step keeps the expected work within ~1e-9
relative of the full :func:`~repro.core.optimizer.optimize_t0_via_recurrence`
search — see ``benchmarks/bench_plan_cache.py`` for the measured numbers.

Tables live as ``.npz`` files under ``<cache_dir>/tables/v<schema>/``;
:func:`load_table` is corruption-tolerant (a truncated or garbage file reads
as "no table" and queries fall back to the optimizer).
"""

from __future__ import annotations

import math
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

import numpy as np

from ..core.hetero_recurrence import HeteroBatchResult, generate_schedules_hetero
from ..core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    LifeFunction,
    PolynomialRisk,
    UniformRisk,
)
from ..core.optimizer import optimize_t0_via_recurrence
from ..core.plancache import LatencyReservoir, PlanCache, default_plan_cache
from ..core.schedule import Schedule
from ..exceptions import CycleStealingError, PlanCacheError
from ..types import FloatArray
from .sweeps import run_sweep

__all__ = [
    "TABLE_SCHEMA_VERSION",
    "TABLE_FAMILIES",
    "GuidelineTable",
    "PlanAnswer",
    "TableServer",
    "make_family_life",
    "default_grids",
    "precompute_table",
    "table_path",
    "save_table",
    "load_table",
]

#: Version of the on-disk table schema (bump on incompatible layout changes).
TABLE_SCHEMA_VERSION = 1

#: family name -> (parameter swept by the table, fixed extra parameters).
TABLE_FAMILIES: dict[str, tuple[str, dict[str, float]]] = {
    "uniform": ("L", {}),
    "poly": ("L", {"d": 3.0}),
    "geomdec": ("a", {}),
    "geominc": ("L", {}),
}


def make_family_life(
    family: str, param_value: float, fixed: Optional[Mapping[str, float]] = None
) -> LifeFunction:
    """Instantiate a Section 4 family from its table coordinates."""
    fixed = dict(fixed or ())
    if family == "uniform":
        return UniformRisk(param_value)
    if family == "poly":
        return PolynomialRisk(int(fixed.get("d", 3.0)), param_value)
    if family == "geomdec":
        return GeometricDecreasingLifespan(param_value)
    if family == "geominc":
        return GeometricIncreasingRisk(param_value)
    raise PlanCacheError(f"unknown table family {family!r}; expected one of "
                         f"{sorted(TABLE_FAMILIES)}")


def default_grids(family: str) -> tuple[FloatArray, FloatArray]:
    """The default ``(c_grid, param_grid)`` for one family's table.

    Log-spaced: ``t0*`` varies like a power of both coordinates for every
    Section 4 family, so geometric spacing equalizes the relative
    interpolation error across the table.
    """
    if family in ("uniform", "poly"):
        return np.geomspace(0.5, 8.0, 17), np.geomspace(50.0, 1600.0, 17)
    if family == "geomdec":
        return np.geomspace(0.1, 1.5, 17), np.geomspace(1.02, 2.5, 17)
    if family == "geominc":
        return np.geomspace(0.25, 4.0, 17), np.geomspace(10.0, 120.0, 17)
    raise PlanCacheError(f"unknown table family {family!r}")


@dataclass(frozen=True)
class GuidelineTable:
    """A precomputed ``t0*`` / ``E*`` grid for one closed-form family."""

    family: str
    param_name: str
    fixed: tuple[tuple[str, float], ...]
    c_grid: FloatArray
    param_grid: FloatArray
    #: Optimal initial periods, shape ``(len(c_grid), len(param_grid))``.
    t0: FloatArray
    #: Expected work at the optimum, same shape.
    expected_work: FloatArray
    #: Periods in the generated schedule, same shape.
    num_periods: np.ndarray
    #: t0-search resolution / bracket widening the sweep used.
    search_grid: int = 129
    search_widen: float = 1.5
    schema_version: int = TABLE_SCHEMA_VERSION

    @property
    def shape(self) -> tuple[int, int]:
        return (int(self.c_grid.size), int(self.param_grid.size))

    def contains(self, c: float, param_value: float) -> bool:
        """Whether ``(c, θ)`` lies inside the table's bounds."""
        return bool(
            self.c_grid[0] <= c <= self.c_grid[-1]
            and self.param_grid[0] <= param_value <= self.param_grid[-1]
        )

    def cell(self, c: float, param_value: float) -> tuple[int, int]:
        """Indices ``(i, j)`` of the containing cell's lower-left corner."""
        i = int(np.clip(np.searchsorted(self.c_grid, c) - 1, 0, self.c_grid.size - 2))
        j = int(
            np.clip(np.searchsorted(self.param_grid, param_value) - 1,
                    0, self.param_grid.size - 2)
        )
        return i, j

    def contains_batch(self, cs: FloatArray, param_values: FloatArray) -> np.ndarray:
        """Vectorized :meth:`contains` over query vectors."""
        cs = np.asarray(cs, dtype=float)
        vs = np.asarray(param_values, dtype=float)
        return (
            (self.c_grid[0] <= cs) & (cs <= self.c_grid[-1])
            & (self.param_grid[0] <= vs) & (vs <= self.param_grid[-1])
        )

    def interpolate_t0_batch(
        self, cs: FloatArray, param_values: FloatArray
    ) -> tuple[FloatArray, FloatArray, FloatArray, np.ndarray]:
        """Vectorized bilinear ``t0`` estimates plus corner brackets.

        Returns ``(t0_est, lo, hi, valid)``; ``valid[i]`` is ``False`` where
        the containing cell has missing (NaN) corners, and ``t0_est/lo/hi``
        are NaN there.  Every arithmetic operation is elementwise in the same
        order as the scalar :meth:`interpolate_t0`, so a length-1 batch is
        bit-identical to the scalar result.
        """
        cs = np.asarray(cs, dtype=float)
        vs = np.asarray(param_values, dtype=float)
        i = np.clip(np.searchsorted(self.c_grid, cs) - 1, 0, self.c_grid.size - 2)
        j = np.clip(
            np.searchsorted(self.param_grid, vs) - 1, 0, self.param_grid.size - 2
        )
        # Gather the four cell corners for every query at once.
        c00 = self.t0[i, j]
        c01 = self.t0[i, j + 1]
        c10 = self.t0[i + 1, j]
        c11 = self.t0[i + 1, j + 1]
        valid = (
            np.isfinite(c00) & np.isfinite(c01) & np.isfinite(c10) & np.isfinite(c11)
        )
        wc = (cs - self.c_grid[i]) / (self.c_grid[i + 1] - self.c_grid[i])
        wp = (vs - self.param_grid[j]) / (self.param_grid[j + 1] - self.param_grid[j])
        top = c00 * (1 - wp) + c01 * wp
        bot = c10 * (1 - wp) + c11 * wp
        est = top * (1 - wc) + bot * wc
        lo = np.minimum(np.minimum(c00, c01), np.minimum(c10, c11))
        hi = np.maximum(np.maximum(c00, c01), np.maximum(c10, c11))
        est = np.where(valid, est, np.nan)
        lo = np.where(valid, lo, np.nan)
        hi = np.where(valid, hi, np.nan)
        return est, lo, hi, valid

    def interpolate_t0(self, c: float, param_value: float) -> tuple[float, float, float]:
        """Bilinear ``t0`` estimate plus the cell's corner bracket ``(lo, hi)``.

        Bilinear interpolation of a grid that is monotone in each coordinate
        stays inside the corner envelope, so ``[min corner, max corner]`` is
        a sound (and tight) polish bracket.  Raises
        :class:`~repro.exceptions.CycleStealingError` on cells with missing
        (NaN) corners — callers fall back to the full optimizer.  Thin
        ``n = 1`` wrapper over :meth:`interpolate_t0_batch`.
        """
        est, lo, hi, valid = self.interpolate_t0_batch(
            np.asarray([c]), np.asarray([param_value])
        )
        if not valid[0]:
            i, j = self.cell(c, param_value)
            raise CycleStealingError(
                f"table cell ({i}, {j}) for family {self.family!r} has missing corners"
            )
        return float(est[0]), float(lo[0]), float(hi[0])


@dataclass(frozen=True)
class PlanAnswer:
    """A served schedule plus provenance (which tier answered)."""

    family: str
    c: float
    param_value: float
    t0: float
    schedule: Schedule
    expected_work: float
    #: ``"table"`` (interpolated + polished) or ``"optimizer"`` (fallback).
    source: str
    termination: str = ""


# ----------------------------------------------------------------------
# Sweep (precomputation)
# ----------------------------------------------------------------------


def _table_point(
    family: str,
    c: float,
    param_value: float,
    fixed: Optional[dict] = None,
    search_grid: int = 129,
    search_widen: float = 1.5,
    cache_dir: Optional[str] = None,
) -> list:
    """One grid point: module-level so process pools can pickle it.

    Rides the process-default plan cache (sharing ``cache_dir``'s disk tier
    across workers and re-runs), so re-warming a table is nearly free.
    """
    cache = default_plan_cache(cache_dir) if cache_dir else None
    p = make_family_life(family, param_value, fixed)
    try:
        t0, outcome, ew = optimize_t0_via_recurrence(
            p, c, grid=search_grid, widen=search_widen, cache=cache
        )
    except CycleStealingError:
        return [math.nan, math.nan, 0]
    return [t0, ew, outcome.schedule.num_periods]


def precompute_table(
    family: str,
    c_grid: Optional[FloatArray] = None,
    param_grid: Optional[FloatArray] = None,
    fixed: Optional[Mapping[str, float]] = None,
    search_grid: int = 129,
    search_widen: float = 1.5,
    n_jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> GuidelineTable:
    """Sweep the ``(c, θ)`` grid once and assemble the guideline table.

    ``n_jobs`` fans the sweep out over a process pool (see
    :func:`~repro.analysis.sweeps.run_sweep`); each point's ``t_0`` search
    rides the plan cache under ``cache_dir`` when one is given.
    """
    param_name, default_fixed = TABLE_FAMILIES[family]
    fixed = dict(fixed if fixed is not None else default_fixed)
    if c_grid is None or param_grid is None:
        default_c, default_param = default_grids(family)
        c_grid = default_c if c_grid is None else c_grid
        param_grid = default_param if param_grid is None else param_grid
    c_grid = np.asarray(c_grid, dtype=float)
    param_grid = np.asarray(param_grid, dtype=float)
    if c_grid.size < 2 or param_grid.size < 2:
        raise PlanCacheError("table grids need at least 2 points per axis")
    if np.any(np.diff(c_grid) <= 0) or np.any(np.diff(param_grid) <= 0):
        raise PlanCacheError("table grids must be strictly increasing")

    params_list = [
        {
            "family": family,
            "c": float(c),
            "param_value": float(v),
            "fixed": fixed,
            "search_grid": search_grid,
            "search_widen": search_widen,
            "cache_dir": str(cache_dir) if cache_dir is not None else None,
        }
        for c in c_grid
        for v in param_grid
    ]
    points = run_sweep(params_list, _table_point, n_jobs=n_jobs)
    rows = np.asarray([pt.row for pt in points], dtype=float)
    shape = (c_grid.size, param_grid.size)
    return GuidelineTable(
        family=family,
        param_name=param_name,
        fixed=tuple(sorted((k, float(v)) for k, v in fixed.items())),
        c_grid=c_grid,
        param_grid=param_grid,
        t0=rows[:, 0].reshape(shape),
        expected_work=rows[:, 1].reshape(shape),
        num_periods=rows[:, 2].astype(int).reshape(shape),
        search_grid=search_grid,
        search_widen=search_widen,
    )


# ----------------------------------------------------------------------
# Persistence (npz, corruption-tolerant)
# ----------------------------------------------------------------------


def table_path(cache_dir: Union[str, Path], family: str) -> Path:
    """The conventional location of one family's table."""
    return Path(cache_dir) / "tables" / f"v{TABLE_SCHEMA_VERSION}" / f"{family}.npz"


def save_table(table: GuidelineTable, path: Union[str, Path]) -> Path:
    """Persist a table atomically (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".npz.tmp")
    fixed_names = [k for k, _ in table.fixed]
    fixed_values = np.asarray([v for _, v in table.fixed], dtype=float)
    with open(tmp, "wb") as fh:
        np.savez(
            fh,
            schema_version=np.asarray([table.schema_version]),
            family=np.asarray([table.family]),
            param_name=np.asarray([table.param_name]),
            fixed_names=np.asarray(fixed_names, dtype="U32"),
            fixed_values=fixed_values,
            c_grid=table.c_grid,
            param_grid=table.param_grid,
            t0=table.t0,
            expected_work=table.expected_work,
            num_periods=table.num_periods,
            search=np.asarray([float(table.search_grid), table.search_widen]),
        )
    tmp.replace(path)
    return path


#: Arrays worth sharing between worker processes (the big per-cell grids).
_MMAP_ARRAYS = ("t0", "expected_work", "num_periods")


def _mmap_npz_arrays(
    path: Path, names: tuple[str, ...]
) -> Optional[dict[str, np.ndarray]]:
    """Map ``names`` out of an uncompressed ``.npz`` as zero-copy read-only arrays.

    ``np.load(mmap_mode=...)`` silently ignores the request for ``.npz``
    archives, so process-pool workers each deserialize a private copy of
    every table.  ``np.savez`` stores members uncompressed (``ZIP_STORED``),
    which means each ``.npy`` member sits contiguously in the file: one
    shared :mod:`mmap` of the archive plus :func:`np.frombuffer` at each
    member's data offset yields arrays whose pages the OS shares across
    every process that maps the same file.  Returns ``None`` (caller keeps
    the regular in-memory load) on any structural surprise — compressed
    members, unknown npy versions, short reads.
    """
    import io
    import mmap as mmap_mod
    import struct

    try:
        with open(path, "rb") as fh:
            mm = mmap_mod.mmap(fh.fileno(), 0, access=mmap_mod.ACCESS_READ)
        with zipfile.ZipFile(path) as zf:
            arrays: dict[str, np.ndarray] = {}
            for name in names:
                info = zf.getinfo(f"{name}.npy")
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                # The central directory's extra field can differ from the
                # local header's; re-read the local header for the offsets.
                off = info.header_offset
                sig, = struct.unpack("<I", mm[off : off + 4])
                if sig != 0x04034B50:  # local file header magic
                    return None
                name_len, extra_len = struct.unpack("<HH", mm[off + 26 : off + 30])
                data_off = off + 30 + name_len + extra_len
                header = io.BytesIO(mm[data_off : data_off + 4096])
                version = np.lib.format.read_magic(header)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(header)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(header)
                else:
                    return None
                if fortran or dtype.hasobject:
                    return None
                count = int(np.prod(shape, dtype=np.int64))
                arr = np.frombuffer(
                    mm, dtype=dtype, count=count, offset=data_off + header.tell()
                ).reshape(shape)
                arrays[name] = arr  # read-only; .base keeps the mmap alive
        return arrays
    except (OSError, ValueError, KeyError, EOFError, struct.error, zipfile.BadZipFile):
        return None


def load_table(
    path: Union[str, Path], mmap_mode: Optional[str] = None
) -> Optional[GuidelineTable]:
    """Load a table; ``None`` for missing, corrupt, or wrong-schema files.

    ``mmap_mode="r"`` additionally maps the big per-cell grids (``t0``,
    ``expected_work``, ``num_periods``) straight out of the archive as
    shared read-only pages (see :func:`_mmap_npz_arrays`); when mapping is
    not possible the load silently stays in-memory.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            if int(data["schema_version"][0]) != TABLE_SCHEMA_VERSION:
                return None
            fixed = tuple(
                (str(k), float(v))
                for k, v in zip(data["fixed_names"], data["fixed_values"])
            )
            grids = {
                "t0": np.asarray(data["t0"], dtype=float),
                "expected_work": np.asarray(data["expected_work"], dtype=float),
                "num_periods": np.asarray(data["num_periods"], dtype=int),
            }
            if mmap_mode == "r":
                mapped = _mmap_npz_arrays(path, _MMAP_ARRAYS)
                if mapped is not None and all(
                    mapped[k].shape == grids[k].shape
                    and mapped[k].dtype == grids[k].dtype
                    for k in _MMAP_ARRAYS
                ):
                    grids = mapped
            table = GuidelineTable(
                family=str(data["family"][0]),
                param_name=str(data["param_name"][0]),
                fixed=fixed,
                c_grid=np.asarray(data["c_grid"], dtype=float),
                param_grid=np.asarray(data["param_grid"], dtype=float),
                t0=grids["t0"],
                expected_work=grids["expected_work"],
                num_periods=grids["num_periods"],
                search_grid=int(data["search"][0]),
                search_widen=float(data["search"][1]),
            )
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
        return None
    if table.t0.shape != table.shape or table.expected_work.shape != table.shape:
        return None
    return table


# ----------------------------------------------------------------------
# Serving
# ----------------------------------------------------------------------


#: Batched polish resolution: K-point bracket scans, refined R times.  The
#: final bracket step is ``width / (K-1)^R / 2^{R-1}`` ≈ ``width / 65536`` —
#: with E locally quadratic in ``t0`` that keeps the served expected work
#: within ~1e-9 relative of the bracket optimum (same budget the old
#: per-query Brent polish targeted, but in 5 vector passes instead of ~30
#: sequential recurrence walks per query).
_POLISH_POINTS = 17
_POLISH_ROUNDS = 5


class TableServer:
    """Serve near-optimal schedules from precomputed tables in ~O(m) time.

    Holds one :class:`GuidelineTable` per family (loaded lazily from
    ``cache_dir``, with the big grids mmapped read-only by default so pool
    workers share pages), answers :meth:`query` / :meth:`query_batch` by
    interpolate + polish, and falls back to the full optimizer — through the
    shared plan cache — outside table bounds.  When no explicit ``cache`` is
    given but ``cache_dir`` is, a :class:`PlanCache` over the same directory
    is created, so repeated off-grid misses warm and hit the plan cache
    instead of re-running the optimizer every time.  Query latency and
    source mix are tracked in ``counters`` and the ``latency`` reservoir.

    All scalar entry points are thin ``n = 1`` wrappers over the batch
    paths, so a batched query is bit-identical to the scalar loop.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        cache: Optional[PlanCache] = None,
        mmap_tables: bool = True,
        engine: str = "numpy",
    ) -> None:
        if engine not in ("numpy", "jit"):
            raise PlanCacheError(
                f"unknown engine {engine!r}; expected 'numpy' or 'jit'"
            )
        # "jit" routes the hetero recurrence (interpolation polish + final
        # regeneration) and the optimizer fallback's grid sweep through the
        # compiled kernels; it degrades transparently to the NumPy engines
        # when numba is unavailable.
        self.engine = engine
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if cache is None and self.cache_dir is not None:
            # A private cache over the server's own directory — deliberately
            # not the process-wide singleton, whose directory it must not
            # hijack.
            cache = PlanCache(cache_dir=self.cache_dir)
        self.cache = cache
        self.mmap_tables = bool(mmap_tables)
        self._tables: dict[str, Optional[GuidelineTable]] = {}
        self.counters: dict[str, Any] = {"table": 0, "optimizer": 0, "seconds": 0.0}
        self.latency = LatencyReservoir(seed=1)

    def add_table(self, table: GuidelineTable) -> None:
        """Register an in-memory table (used by tests and warm pipelines)."""
        self._tables[table.family] = table

    def table(self, family: str) -> Optional[GuidelineTable]:
        """The family's table, loading from ``cache_dir`` on first use."""
        if family not in self._tables:
            loaded = None
            if self.cache_dir is not None:
                loaded = load_table(
                    table_path(self.cache_dir, family),
                    mmap_mode="r" if self.mmap_tables else None,
                )
            self._tables[family] = loaded
        return self._tables[family]

    def _family_fixed(self, family: str) -> dict[str, float]:
        fixed = dict(TABLE_FAMILIES[family][1])
        table = self.table(family)
        if table is not None:
            fixed = dict(table.fixed)
        return fixed

    # ------------------------------------------------------------------
    # Queries (batched core + scalar wrappers)
    # ------------------------------------------------------------------

    def query(
        self,
        family: str,
        c: float,
        param_value: float,
        polish: bool = True,
    ) -> PlanAnswer:
        """A near-optimal schedule for family ``(c, θ)``, served fast.

        Inside table bounds: bilinear ``t0`` interpolation, an optional
        bounded polish over the cell's corner bracket (recurrence-walk
        evaluations only), and one final schedule regeneration.  Outside (or
        with no table): the full ``t_0`` optimizer, riding ``self.cache``.
        Thin ``n = 1`` wrapper over :meth:`query_batch`.
        """
        return self.query_batch([family], [c], [param_value], polish=polish)[0]

    def query_batch(
        self,
        families: Sequence[str],
        cs: FloatArray,
        param_values: FloatArray,
        polish: bool = True,
    ) -> list[PlanAnswer]:
        """Serve a whole query batch, vectorized per family table.

        Queries are grouped by family; each group's in-bounds lanes run
        through one vectorized interpolate + polish pass
        (:meth:`GuidelineTable.interpolate_t0_batch` + the heterogeneous
        batch recurrence), and the rest fall back to the full optimizer one
        by one in ascending input order, riding ``self.cache``.  Answers
        come back in input order.
        """
        start = time.perf_counter()
        fams = [str(f) for f in families]
        cs_arr = np.asarray(cs, dtype=float)
        vs_arr = np.asarray(param_values, dtype=float)
        n = len(fams)
        if cs_arr.shape != (n,) or vs_arr.shape != (n,):
            raise PlanCacheError(
                f"query_batch needs equally long families/cs/param_values, got "
                f"{n}/{cs_arr.shape}/{vs_arr.shape}"
            )
        answers: list[Optional[PlanAnswer]] = [None] * n
        fallback: list[int] = []
        for family in dict.fromkeys(fams):
            if family not in TABLE_FAMILIES:
                raise PlanCacheError(
                    f"unknown table family {family!r}; expected one of "
                    f"{sorted(TABLE_FAMILIES)}"
                )
            table = self.table(family)
            group = np.asarray([i for i, f in enumerate(fams) if f == family])
            if table is None:
                fallback.extend(int(i) for i in group)
                continue
            inb = table.contains_batch(cs_arr[group], vs_arr[group])
            served = self._serve_from_table_batch(
                table, family, cs_arr[group[inb]], vs_arr[group[inb]], polish
            )
            for gi, res in zip(group[inb], served):
                if isinstance(res, PlanAnswer):
                    answers[int(gi)] = res
                else:  # NaN cell or degenerate bracket: fall back
                    fallback.append(int(gi))
            fallback.extend(int(i) for i in group[~inb])
        for i in sorted(fallback):
            fixed = self._family_fixed(fams[i])
            p = make_family_life(fams[i], float(vs_arr[i]), fixed)
            t0, outcome, ew = optimize_t0_via_recurrence(
                p,
                float(cs_arr[i]),
                engine="jit" if self.engine == "jit" else "batch",
                cache=self.cache,
            )
            answers[i] = PlanAnswer(
                family=fams[i], c=float(cs_arr[i]), param_value=float(vs_arr[i]),
                t0=t0, schedule=outcome.schedule, expected_work=ew,
                source="optimizer", termination=outcome.termination.value,
            )
        for answer in answers:
            assert answer is not None
            self.counters[answer.source] += 1
        elapsed = time.perf_counter() - start
        self.counters["seconds"] += elapsed
        for _ in range(n):
            self.latency.add(elapsed / n)
        return [a for a in answers if a is not None]

    def serve_from_table(
        self,
        family: str,
        c: float,
        param_value: float,
        polish: bool = True,
    ) -> PlanAnswer:
        """Serve **strictly** from the precomputed table — no optimizer fallback.

        The table tier of the resilient serving chain
        (:class:`repro.core.serving.PlanServer`) needs tier isolation: a
        query the table cannot answer must *raise* so the chain can fall
        through, rather than silently invoking the optimizer.  Thin ``n = 1``
        wrapper over :meth:`serve_from_table_batch`.

        Raises
        ------
        CycleStealingError
            When the family has no (loadable) table, ``(c, θ)`` lies outside
            its bounds, or the containing cell has missing corners.
        """
        result = self.serve_from_table_batch([family], [c], [param_value], polish)[0]
        if isinstance(result, CycleStealingError):
            raise result
        return result

    def serve_from_table_batch(
        self,
        families: Sequence[str],
        cs: FloatArray,
        param_values: FloatArray,
        polish: bool = True,
    ) -> list[Union[PlanAnswer, CycleStealingError]]:
        """The strict table tier over a whole batch, with per-lane outcomes.

        Returns one entry per query, **in order**: a :class:`PlanAnswer` for
        lanes the table can serve, and the :class:`CycleStealingError` that
        the scalar :meth:`serve_from_table` would have raised for the rest
        (no table, out of bounds, missing corners).  Returning — rather than
        raising — the per-lane errors lets the batched serving chain mark
        individual lanes as tier misses without losing the rest of the batch.
        """
        start = time.perf_counter()
        fams = [str(f) for f in families]
        cs_arr = np.asarray(cs, dtype=float)
        vs_arr = np.asarray(param_values, dtype=float)
        n = len(fams)
        if cs_arr.shape != (n,) or vs_arr.shape != (n,):
            raise PlanCacheError(
                f"serve_from_table_batch needs equally long families/cs/"
                f"param_values, got {n}/{cs_arr.shape}/{vs_arr.shape}"
            )
        results: list[Union[PlanAnswer, CycleStealingError, None]] = [None] * n
        for family in dict.fromkeys(fams):
            table = self.table(family)
            group = np.asarray([i for i, f in enumerate(fams) if f == family])
            if table is None:
                for i in group:
                    results[int(i)] = CycleStealingError(
                        f"no precomputed table for family {family!r} "
                        f"(cache_dir={self.cache_dir})"
                    )
                continue
            inb = table.contains_batch(cs_arr[group], vs_arr[group])
            for i in group[~inb]:
                results[int(i)] = CycleStealingError(
                    f"query (c={cs_arr[i]}, {table.param_name}={vs_arr[i]}) lies "
                    f"outside the {family!r} table bounds"
                )
            served = self._serve_from_table_batch(
                table, family, cs_arr[group[inb]], vs_arr[group[inb]], polish
            )
            for gi, res in zip(group[inb], served):
                results[int(gi)] = res
        serves = sum(1 for r in results if isinstance(r, PlanAnswer))
        self.counters["table"] += serves
        elapsed = time.perf_counter() - start
        self.counters["seconds"] += elapsed
        for _ in range(n):
            self.latency.add(elapsed / n)
        return [r for r in results if r is not None]

    def _serve_from_table_batch(
        self,
        table: GuidelineTable,
        family: str,
        cs: FloatArray,
        vs: FloatArray,
        polish: bool,
    ) -> list[Union[PlanAnswer, CycleStealingError]]:
        """Vectorized interpolate + polish for in-bounds lanes of one family.

        Every arithmetic step is elementwise per lane (clamping, bracket
        padding, the K-point polish scans, the final argmax), so a length-1
        call is bit-identical to the same lane inside any larger batch.
        """
        n = int(np.asarray(cs).size)
        if n == 0:
            return []
        fixed = dict(table.fixed)
        d = int(fixed.get("d", 1))
        est, lo0, hi0, valid = table.interpolate_t0_batch(cs, vs)
        results: list[Union[PlanAnswer, CycleStealingError, None]] = [None] * n
        for i in np.nonzero(~valid)[0]:
            ci, cj = table.cell(float(cs[i]), float(vs[i]))
            results[int(i)] = CycleStealingError(
                f"table cell ({ci}, {cj}) for family {family!r} has missing corners"
            )
        live = np.nonzero(valid)[0]
        if live.size == 0:
            return [r for r in results if r is not None]
        lcs, lvs = cs[live], vs[live]
        lest, llo, lhi = est[live], lo0[live], hi0[live]
        # Pad the corner bracket: the true t0*(c, θ) is monotone but the
        # corners bound it only up to grid curvature.
        pad = 0.08 * np.maximum(lhi - llo, 0.0) + 1e-6 * lest
        lo = np.maximum(llo - pad, lcs * (1 + 1e-9))
        hi = lhi + pad
        if family != "geomdec":  # finite lifespan L = the swept parameter
            hi = np.minimum(hi, lvs * (1 - 1e-12))
        t0 = np.minimum(np.maximum(lest, lo), hi)
        # The engine needs strictly productive periods; lanes whose whole
        # bracket collapsed to <= c (lifespan clamp below the overhead)
        # cannot be table-served.
        feasible = t0 > lcs
        for i in live[~feasible]:
            results[int(i)] = CycleStealingError(
                f"table-served t0 bracket for (c={cs[i]}, θ={vs[i]}) "
                f"produced no schedule"
            )
        keep = np.nonzero(feasible)[0]
        if keep.size == 0:
            return [r for r in results if r is not None]
        live = live[keep]
        lcs, lvs, lo, hi = lcs[keep], lvs[keep], lo[keep], hi[keep]
        best_t = t0[keep]
        if polish:
            best_t, batch = self._polish_batch(family, d, lcs, lvs, lo, hi, best_t)
        else:
            batch = generate_schedules_hetero(
                family, lcs, lvs, best_t, d=d, engine=self.engine
            )
        for k, i in enumerate(live):
            results[int(i)] = PlanAnswer(
                family=family, c=float(cs[i]), param_value=float(vs[i]),
                t0=float(best_t[k]), schedule=batch.schedule(k),
                expected_work=float(batch.expected_work[k]),
                source="table", termination=batch.termination(k).value,
            )
        return [r for r in results if r is not None]

    def _polish_batch(
        self,
        family: str,
        d: int,
        lcs: FloatArray,
        lvs: FloatArray,
        lo: FloatArray,
        hi: FloatArray,
        best_t: FloatArray,
    ) -> tuple[FloatArray, HeteroBatchResult]:
        """Per-lane bracket refinement of ``t0`` (the vectorized polish).

        Each round scores ``best-so-far + K`` evenly spaced candidates per
        lane with **one** heterogeneous recurrence call and shrinks the
        bracket around the per-lane argmax (first index wins ties, so the
        carried-over best is never displaced by an equal candidate).
        Returns the final best ``t0`` per lane plus the scored batch whose
        winning rows carry the matching schedules.
        """
        n = lcs.size
        k_pts = _POLISH_POINTS
        cur_lo, cur_hi = lo.copy(), hi.copy()
        rows = np.arange(n)
        for _ in range(_POLISH_ROUNDS):
            step = (cur_hi - cur_lo) / (k_pts - 1)
            cand = cur_lo[:, None] + np.arange(k_pts)[None, :] * step[:, None]
            cand[:, -1] = cur_hi  # endpoint exactly, no accumulation drift
            cand = np.concatenate([best_t[:, None], cand], axis=1)
            cand = np.clip(cand, np.nextafter(lcs, np.inf)[:, None], None)
            flat = cand.ravel()
            batch = generate_schedules_hetero(
                family,
                np.repeat(lcs, k_pts + 1),
                np.repeat(lvs, k_pts + 1),
                flat,
                d=d,
                engine=self.engine,
            )
            scores = batch.expected_work.reshape(n, k_pts + 1)
            pick = np.argmax(scores, axis=1)
            best_t = cand[rows, pick]
            cur_lo = np.maximum(best_t - step, lo)
            cur_hi = np.minimum(best_t + step, hi)
        winners = rows * (k_pts + 1) + pick
        final = HeteroBatchResult(
            family=family,
            cs=lcs,
            params=lvs,
            t0s=best_t,
            periods=batch.periods[winners],
            num_periods=batch.num_periods[winners],
            termination_codes=batch.termination_codes[winners],
            expected_work=batch.expected_work[winners],
        )
        return best_t, final

    def warm(
        self,
        families: Optional[list[str]] = None,
        n_jobs: Optional[int] = None,
        search_grid: int = 129,
        search_widen: float = 1.5,
        grids: Optional[Mapping[str, tuple[FloatArray, FloatArray]]] = None,
    ) -> dict[str, GuidelineTable]:
        """Precompute (and persist, when ``cache_dir`` is set) tables.

        Returns the freshly built tables by family name.
        """
        built: dict[str, GuidelineTable] = {}
        for family in families or list(TABLE_FAMILIES):
            c_grid = param_grid = None
            if grids and family in grids:
                c_grid, param_grid = grids[family]
            table = precompute_table(
                family,
                c_grid=c_grid,
                param_grid=param_grid,
                search_grid=search_grid,
                search_widen=search_widen,
                n_jobs=n_jobs,
                cache_dir=self.cache_dir,
            )
            if self.cache_dir is not None:
                save_table(table, table_path(self.cache_dir, family))
            self.add_table(table)
            built[family] = table
        return built
