"""Fleet benchmark harness: policy comparison, scalar baseline, parity gate.

Three jobs, shared by ``repro fleet`` and ``benchmarks/bench_fleet.py``:

* :func:`run_policy_comparison` — one :class:`~repro.now.fleet.FleetSpec`
  swept across the dispatch policies, with the
  :func:`~repro.now.fleet.mean_field_fleet` fixed-point prediction recorded
  against each simulation (relative makespan/goodput errors — à la Van
  Houdt's mean-field validation of stealing models);
* :func:`scalar_baseline` — the throughput yardstick: N independent
  ``run_farm`` calls over the same per-host workload shares and the *same*
  per-host RNG substreams, timed for simulated host-events/sec;
* :func:`parity_check` — the differential gate: an ``n = 1`` fleet must be
  bit-identical to ``run_farm`` on the shared-RNG contract — per-host
  stats, completion time, event count, goodput, the policy-call (dispatch
  log) trace, the committed task-id sequence, and the fault digest.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence

import numpy as np

from ..baselines.policies import SchedulePolicy
from ..faults import (
    CrashFault,
    FaultPlan,
    LifeDriftFault,
    MessageDelayFault,
    MessageLossFault,
    OverheadJitterFault,
    ResultCorruptionFault,
)
from ..now.farm import run_farm
from ..now.fleet import (
    FLEET_POLICIES,
    FleetPlan,
    FleetSpec,
    host_network,
    host_rng,
    mean_field_fleet,
    plan_fleet_schedules,
    run_fleet,
)
from ..workloads.tasks import TaskPool

__all__ = [
    "fleet_workload",
    "auto_horizon",
    "run_policy_comparison",
    "scalar_baseline",
    "parity_check",
    "cross_core_check",
]

#: Dyadic default task duration: partial prefix sums are exact in binary
#: floating point, which is what makes range-packing vs per-task packing
#: bit-identical (the fleet module's exact-parity contract).
DEFAULT_TASK_DURATION = 0.03125
DEFAULT_WORK_PER_HOST = 128.0


def fleet_workload(
    n_hosts: int,
    work_per_host: float = DEFAULT_WORK_PER_HOST,
    task_duration: float = DEFAULT_TASK_DURATION,
) -> np.ndarray:
    """A constant-duration task array totalling ``n_hosts * work_per_host``."""
    if work_per_host <= 0 or task_duration <= 0:
        raise ValueError("work_per_host and task_duration must be positive")
    per_host = max(1, int(round(work_per_host / task_duration)))
    return np.full(int(n_hosts) * per_host, float(task_duration))


def auto_horizon(spec: FleetSpec, plan: FleetPlan, total_work: float) -> float:
    """A horizon comfortably past the mean-field makespan (4x, min 50)."""
    mf = mean_field_fleet(spec, plan, total_work, policy="sharing")
    makespan = mf["makespan"]
    if not math.isfinite(makespan) or makespan <= 0:
        return 1000.0
    return max(50.0, 4.0 * makespan)


def _relative_error(predicted: float, actual: float) -> Optional[float]:
    if not (math.isfinite(predicted) and math.isfinite(actual)) or actual == 0:
        return None
    return abs(predicted - actual) / abs(actual)


def run_policy_comparison(
    spec: FleetSpec,
    durations: np.ndarray,
    horizon: float,
    policies: Sequence[str] = FLEET_POLICIES,
    plan: Optional[FleetPlan] = None,
    grid: int = 9,
    engine: str = "numpy",
    faults: Optional[FaultPlan] = None,
    steal_fraction: float = 0.5,
    core: str = "batched",
    bucket_width: Optional[float] = None,
) -> dict:
    """Simulate every policy on one spec; record metrics + mean-field errors."""
    if plan is None:
        plan = plan_fleet_schedules(spec, grid=grid, engine=engine)
    total_work = float(np.sum(durations))
    record: dict = {
        "hosts": spec.n_hosts,
        "family": spec.family,
        "seed": spec.seed,
        "tasks": int(durations.size),
        "total_work": total_work,
        "horizon": horizon,
        "engine": engine,
        "core": core,
        "policies": {},
    }
    for policy in policies:
        start = time.perf_counter()
        result = run_fleet(
            spec, durations, horizon, policy=policy, plan=plan, faults=faults,
            steal_fraction=steal_fraction, core=core, bucket_width=bucket_width,
        )
        seconds = time.perf_counter() - start
        mf = mean_field_fleet(spec, plan, total_work, policy=policy,
                              faults=faults)
        record["policies"][policy] = {
            "finished": result.finished,
            "makespan": result.completion_time,
            "goodput": result.goodput,
            "total_work_done": result.total_work_done,
            "total_work_lost": result.total_work_lost,
            "total_overhead": result.total_overhead,
            "steals": result.total_steals,
            "steal_rate": result.steal_rate,
            "episodes": int(np.sum(result.episodes)),
            "events": result.events_processed,
            "seconds": seconds,
            "events_per_sec": result.events_processed / seconds,
            "mean_field": {
                "makespan": mf["makespan"],
                "goodput": mf["goodput"],
                "steals": mf["steals"],
                "makespan_rel_error": _relative_error(
                    mf["makespan"], result.completion_time
                ),
                # Simulated long-run goodput is work over *completion* time
                # (the fleet idles after the pool drains).
                "goodput_rel_error": _relative_error(
                    mf["goodput"],
                    result.total_work_done / result.completion_time
                    if result.finished and result.completion_time > 0
                    else result.goodput,
                ),
            },
        }
    return record


def scalar_baseline(
    spec: FleetSpec,
    durations: np.ndarray,
    horizon: float,
    plan: Optional[FleetPlan] = None,
    grid: int = 9,
) -> dict:
    """Time N independent scalar ``run_farm`` calls over per-host shares.

    Each host gets the contiguous slice of ``durations`` the stealing
    policy's initial partition would give it, its planned schedule from the
    same :class:`FleetPlan`, and its own ``host_rng`` substream — the same
    seed contract the fleet honors, so events/sec is apples-to-apples.
    """
    if plan is None:
        plan = plan_fleet_schedules(spec, grid=grid)
    n = spec.n_hosts
    bounds = np.linspace(0, durations.size, n + 1).astype(int)
    events = 0
    tasks_done = 0
    work_done = 0.0
    start = time.perf_counter()
    for i in range(n):
        share = durations[bounds[i]: bounds[i + 1]]
        if share.size == 0:
            continue
        pool = TaskPool.from_durations(share)
        schedule = plan.schedule(i)
        result = run_farm(
            host_network(spec, i),
            pool,
            lambda ws: SchedulePolicy(schedule),
            horizon,
            host_rng(spec, i),
        )
        events += result.events_processed
        tasks_done += result.tasks_completed
        work_done += result.total_work_done
    seconds = time.perf_counter() - start
    return {
        "hosts": n,
        "events": events,
        "seconds": seconds,
        "events_per_sec": events / seconds if seconds > 0 else float("inf"),
        "tasks_completed": tasks_done,
        "work_done": work_done,
    }


# ----------------------------------------------------------------------
# The n = 1 differential parity gate
# ----------------------------------------------------------------------


class _RecordingPolicy(SchedulePolicy):
    """A SchedulePolicy that logs every ``next_period`` consultation."""

    def __init__(self, schedule, trace: list) -> None:
        super().__init__(schedule)
        self.trace = trace

    def next_period(self, elapsed):
        planned = super().next_period(elapsed)
        self.trace.append((elapsed, planned))
        return planned


def _default_parity_faults(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        injectors=(
            CrashFault(mtbf=60.0, restart_time=3.0),
            MessageLossFault(0.1),
            MessageDelayFault(0.15, 0.5),
            OverheadJitterFault(0.2),
            ResultCorruptionFault(0.08),
            LifeDriftFault(0.5, 0.6),
        ),
    )


def parity_check(
    seed: int = 7,
    family: str = "uniform",
    policies: Sequence[str] = FLEET_POLICIES,
    with_faults: bool = True,
    n_tasks: int = 2048,
    task_duration: float = 0.25,
    horizon: float = 1500.0,
    core: str = "batched",
) -> dict:
    """Differential gate: the n = 1 fleet must be bit-identical to run_farm.

    Returns ``{"ok": bool, "checks": int, "mismatches": [str, ...]}``; each
    mismatch string names the policy and the field that diverged.
    """
    spec = FleetSpec.homogeneous(1, family=family, seed=seed)
    plan = plan_fleet_schedules(spec, grid=9)
    durations = np.full(int(n_tasks), float(task_duration))
    faults = _default_parity_faults(seed + 1) if with_faults else None
    mismatches: list[str] = []
    checks = 0

    for policy in policies:
        fleet = run_fleet(
            spec, durations, horizon, policy=policy, plan=plan,
            faults=faults, record_log=True, core=core,
        )
        pool = TaskPool.from_durations(durations)
        trace: list = []
        farm = run_farm(
            host_network(spec, 0),
            pool,
            lambda ws: _RecordingPolicy(plan.schedule(0), trace),
            horizon,
            host_rng(spec, 0),
            faults=faults,
        )

        def check(name: str, fleet_value, farm_value) -> None:
            nonlocal checks
            checks += 1
            same = fleet_value == farm_value or (
                isinstance(fleet_value, float)
                and isinstance(farm_value, float)
                and math.isnan(fleet_value)
                and math.isnan(farm_value)
            )
            if not same:
                mismatches.append(
                    f"{policy}: {name} fleet={fleet_value!r} farm={farm_value!r}"
                )

        check("stats", fleet.stats_for(0), farm.stats[0])
        check("completion_time", fleet.completion_time, farm.completion_time)
        check("events_processed", fleet.events_processed, farm.events_processed)
        check("tasks_completed", fleet.tasks_completed, farm.tasks_completed)
        check("goodput", fleet.goodput, farm.goodput)
        fleet_trace = [
            (entry[2], entry[3])
            for entry in fleet.dispatch_log
            if entry[0] == "plan"
        ]
        check("dispatch_log", fleet_trace, trace)
        fleet_ids = [
            task_id
            for entry in fleet.dispatch_log
            if entry[0] == "commit"
            for lo, hi in entry[3]
            for task_id in range(lo, hi)
        ]
        check("committed_ids", fleet_ids, [t.task_id for t in pool.completed])
        if with_faults:
            check("fault_digest", fleet.fault_log.digest(), farm.fault_log.digest())

    return {"ok": not mismatches, "checks": checks, "mismatches": mismatches}


# ----------------------------------------------------------------------
# The batched-vs-heap cross-core differential gate
# ----------------------------------------------------------------------

#: One representative injector per fault class, exercised individually so a
#: cross-core divergence names the class that caused it.
_FAULT_CLASSES: tuple[tuple[str, tuple], ...] = (
    ("clean", ()),
    ("crash", (CrashFault(mtbf=45.0, restart_time=4.0),)),
    ("loss", (MessageLossFault(0.15),)),
    ("delay", (MessageDelayFault(0.2, 0.4),)),
    ("jitter", (OverheadJitterFault(0.3),)),
    ("corruption", (ResultCorruptionFault(0.1),)),
    ("drift", (LifeDriftFault(0.4, 0.5),)),
)

#: FleetResult per-host/stat fields the cross-core gate compares bit-for-bit.
_CORE_PARITY_FIELDS = (
    "episodes", "periods_committed", "periods_killed",
    "tasks_completed_per_host", "work_done", "work_lost", "overhead_paid",
    "idle_absent_time", "crashes", "dispatches_lost", "dispatches_delayed",
    "delay_time", "periods_corrupted", "steals_attempted",
    "steals_succeeded", "steal_wait",
)


def cross_core_check(
    seed: int = 7,
    family: str = "uniform",
    n_hosts: int = 16,
    policies: Sequence[str] = FLEET_POLICIES,
    n_tasks: int = 1024,
    task_duration: float = 0.25,
    horizon: float = 120.0,
    start_absent: bool = False,
    bucket_width: Optional[float] = None,
) -> dict:
    """Differential gate: ``core="batched"`` must be bit-identical to
    ``core="heap"`` — stats, completion, event count, dispatch-log trace
    (policy calls, steals, kills, commits in order), and fault digest — for
    every policy, clean and under each of the six fault classes.

    Returns ``{"ok": bool, "checks": int, "mismatches": [str, ...]}``.
    """
    spec = FleetSpec.homogeneous(int(n_hosts), family=family, seed=seed)
    plan = plan_fleet_schedules(spec, grid=9)
    durations = np.full(int(n_tasks), float(task_duration))
    mismatches: list[str] = []
    checks = 0

    for fault_name, injectors in _FAULT_CLASSES:
        for policy in policies:
            results = {}
            for core in ("heap", "batched"):
                faults = (
                    FaultPlan(seed=seed + 1, injectors=injectors)
                    if injectors else None
                )
                results[core] = run_fleet(
                    spec, durations, horizon, policy=policy, plan=plan,
                    faults=faults, record_log=True, core=core,
                    start_absent=start_absent,
                    bucket_width=bucket_width if core == "batched" else None,
                )
            a, b = results["heap"], results["batched"]
            tag = f"{fault_name}/{policy}"

            def check(name: str, same: bool) -> None:
                nonlocal checks
                checks += 1
                if not same:
                    mismatches.append(f"{tag}: {name}")

            for field in _CORE_PARITY_FIELDS:
                check(field, np.array_equal(getattr(a, field),
                                            getattr(b, field)))
            check("completion_time",
                  a.completion_time == b.completion_time
                  or (math.isnan(a.completion_time)
                      and math.isnan(b.completion_time)))
            check("events_processed",
                  a.events_processed == b.events_processed)
            check("tasks_completed", a.tasks_completed == b.tasks_completed)
            check("dispatch_log", a.dispatch_log == b.dispatch_log)
            if injectors:
                check("fault_digest",
                      a.fault_log.digest() == b.fault_log.digest())

    return {"ok": not mismatches, "checks": checks, "mismatches": mismatches}
