"""Chaos-matrix harness: goodput under injected faults (E-CHAOS).

Sweeps the fault classes of :mod:`repro.faults` — plus a serving-stack
outage injected through :class:`~repro.core.serving.TierChaos` — against a
grid of fault rates, running the full resilient stack in every cell: the
discrete-event farm with the fault runtime and the retry path, a
:class:`~repro.core.serving.PlanServer` planning each episode's schedule, and
a :class:`~repro.baselines.policies.DegradedModePolicy` absorbing planner
outages with the Theorem 3.2 closed-form anchor.

Design for statistical honesty:

* **Common random numbers** — every cell at one seed replays the *same*
  owner timeline (the farm generator is seeded per cell seed, and fault
  draws come from the plan's independent streams), so goodput differences
  across rates measure the faults, not resampled owners.
* **Never-finishing workload** — the task pool holds several times more work
  than the farm can commit inside the horizon, so every cell runs the full
  horizon and goodput denominators match.
* **Determinism witness** — each cell records its
  :meth:`~repro.faults.log.FaultLog.digest`; identical ``(class, rate,
  seed)`` cells must reproduce identical digests bit-for-bit.

The matrix powers the tier-1 chaos smoke test (``tests/analysis/test_chaos``)
and the ``repro chaos`` CLI / ``benchmarks/bench_chaos.py`` artifact
(``BENCH_chaos.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from ..baselines.policies import DegradedModePolicy, EpisodeInfo
from ..core.life_functions import UniformRisk
from ..core.plancache import PlanCache
from ..core.schedule import Schedule
from ..core.serving import PlanServer, TierChaos
from ..exceptions import FaultPlanError
from ..faults import (
    CrashFault,
    FaultPlan,
    LifeDriftFault,
    MessageDelayFault,
    MessageLossFault,
    OverheadJitterFault,
    ResultCorruptionFault,
)
from ..now.farm import RetryPolicy, run_farm
from ..now.network import Network, Workstation
from ..now.owner import OwnerProcess
from ..workloads.tasks import Task, TaskPool

__all__ = [
    "FAULT_CLASSES",
    "ChaosConfig",
    "ChaosCell",
    "build_fault_plan",
    "run_chaos_cell",
    "chaos_matrix",
    "report_to_json",
]

#: Fault classes the matrix sweeps.  The first six map onto
#: :mod:`repro.faults` injectors in the farm; ``planner_outage`` instead
#: injects :class:`~repro.exceptions.FaultInjectionError` into every
#: :class:`~repro.core.serving.PlanServer` tier (including the closed-form
#: one, so total outages exercise the policy's Theorem 3.2 anchor).
FAULT_CLASSES = (
    "crash",
    "message_loss",
    "message_delay",
    "overhead_jitter",
    "result_corruption",
    "life_drift",
    "planner_outage",
)

#: The serving tiers a ``planner_outage`` cell injects faults into.
_OUTAGE_TIERS = ("table", "cache", "optimizer", "guideline")


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos cell's farm setup (identical across the whole matrix).

    The defaults give each cell ~80+ episodes (4 workstations, short owner
    cycles over the horizon) and a pool holding far more work than the farm
    can commit, so no cell finishes early and goodput denominators agree.
    """

    n_ws: int = 4
    c: float = 1.0
    lifespan: float = 30.0  #: uniform-risk L of every owner's absences
    present_mean: float = 4.0
    horizon: float = 600.0
    task_duration: float = 0.5

    def __post_init__(self) -> None:
        if self.n_ws < 1:
            raise FaultPlanError(f"need at least one workstation, got {self.n_ws}")
        if self.horizon <= 0:
            raise FaultPlanError(f"horizon must be positive, got {self.horizon}")

    @property
    def n_tasks(self) -> int:
        """Pool size: ~3x the work the farm could commit running flat out."""
        return int(3.0 * self.n_ws * self.horizon / self.task_duration)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready configuration record."""
        return {
            "n_ws": self.n_ws, "c": self.c, "lifespan": self.lifespan,
            "present_mean": self.present_mean, "horizon": self.horizon,
            "task_duration": self.task_duration, "n_tasks": self.n_tasks,
        }


#: Quick-mode override used by the tier-1 smoke test and ``repro chaos --quick``.
QUICK_CONFIG = ChaosConfig(horizon=200.0)


@dataclass(frozen=True)
class ChaosCell:
    """One ``(fault class, rate, seed)`` cell's measured outcome."""

    fault_class: str
    rate: float
    seed: int
    goodput: float
    work_done: float
    work_lost: float
    overhead_paid: float
    episodes: int
    periods_committed: int
    periods_killed: int
    crashes: int
    dispatches_lost: int
    retries: int
    periods_corrupted: int
    events_processed: int
    #: Determinism witness: sha256 of the cell's canonical fault log.
    fault_digest: str
    fault_counts: dict[str, int]
    #: Degradation mix of the per-workstation planner policies, summed.
    planner_served: int
    planner_failures: int
    degraded_episodes: int
    #: The cell's serving-chain counters (``PlanServer.stats_dict()``).
    serving: dict[str, Any]

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready cell record."""
        return dict(self.__dict__)


def build_fault_plan(
    fault_class: str, rate: float, seed: int
) -> tuple[FaultPlan, Optional[dict[str, float]]]:
    """Map ``(class, rate in [0, 1])`` to a farm plan + serving chaos rates.

    Returns ``(plan, tier_rates)``: farm fault classes give a one-injector
    plan and ``tier_rates=None``; ``planner_outage`` gives a *null* farm plan
    plus the per-tier rates for a :class:`~repro.core.serving.TierChaos`.
    A zero rate always yields the null plan (the differential baseline).
    """
    if fault_class not in FAULT_CLASSES:
        raise FaultPlanError(
            f"unknown fault class {fault_class!r}; expected one of {FAULT_CLASSES}"
        )
    if not 0.0 <= rate <= 1.0:
        raise FaultPlanError(f"fault rate must lie in [0, 1], got {rate}")
    if rate == 0.0:
        return FaultPlan(seed=seed), None
    if fault_class == "planner_outage":
        return FaultPlan(seed=seed), {tier: rate for tier in _OUTAGE_TIERS}
    if fault_class == "crash":
        # rate scales the crash intensity: mtbf 8 time units at full rate.
        injector = CrashFault(mtbf=8.0 / rate, restart_time=4.0)
    elif fault_class == "message_loss":
        injector = MessageLossFault(prob=rate)
    elif fault_class == "message_delay":
        injector = MessageDelayFault(prob=rate, delay_mean=2.0)
    elif fault_class == "overhead_jitter":
        injector = OverheadJitterFault(sigma=1.5 * rate)
    elif fault_class == "result_corruption":
        injector = ResultCorruptionFault(prob=rate)
    else:  # life_drift
        injector = LifeDriftFault(at_fraction=0.25, scale=1.0 - 0.95 * rate)
    return FaultPlan(seed=seed, injectors=(injector,)), None


def run_chaos_cell(
    fault_class: str,
    rate: float,
    seed: int,
    config: ChaosConfig = ChaosConfig(),
    plan_cache: Optional[PlanCache] = None,
) -> ChaosCell:
    """Run one cell: full resilient stack under one fault class at one rate.

    ``plan_cache`` may be shared across cells — the planner's queries are
    content-addressed and deterministic, so cache state never changes an
    answer, only its latency.
    """
    plan, tier_rates = build_fault_plan(fault_class, rate, seed)
    chaos = None if tier_rates is None else TierChaos(tier_rates, seed=seed)
    # The breakers tick on planner calls, not wall-clock time: the whole
    # cell — including breaker opens and half-open probes — is then a
    # deterministic function of (class, rate, seed).
    ticks = [0.0]
    server = PlanServer(
        cache=plan_cache, chaos=chaos,
        breaker_cooldown=8.0, clock=lambda: ticks[0],
    )

    def planner(info: EpisodeInfo) -> Schedule:
        ticks[0] += 1.0
        return server.serve("uniform", config.c, config.lifespan).schedule

    life = UniformRisk(config.lifespan)
    network = Network(
        [
            Workstation(i, OwnerProcess.from_life_function(life, config.present_mean))
            for i in range(config.n_ws)
        ],
        c=config.c,
    )
    pool = TaskPool(
        Task(i, config.task_duration) for i in range(config.n_tasks)
    )
    policies: list[DegradedModePolicy] = []

    def policy_factory(ws: Workstation) -> DegradedModePolicy:
        policy = DegradedModePolicy(planner)
        policies.append(policy)
        return policy

    result = run_farm(
        network,
        pool,
        policy_factory,
        horizon=config.horizon,
        rng=np.random.default_rng(seed),
        faults=plan,
        retry=RetryPolicy(),
    )
    assert result.fault_log is not None
    return ChaosCell(
        fault_class=fault_class,
        rate=float(rate),
        seed=int(seed),
        goodput=result.goodput,
        work_done=result.total_work_done,
        work_lost=result.total_work_lost,
        overhead_paid=result.total_overhead,
        episodes=sum(s.episodes for s in result.stats.values()),
        periods_committed=sum(s.periods_committed for s in result.stats.values()),
        periods_killed=sum(s.periods_killed for s in result.stats.values()),
        crashes=result.total_crashes,
        dispatches_lost=result.total_dispatches_lost,
        retries=sum(s.retries for s in result.stats.values()),
        periods_corrupted=result.total_periods_corrupted,
        events_processed=result.events_processed,
        fault_digest=result.fault_log.digest(),
        fault_counts=result.fault_log.counts(),
        planner_served=sum(p.planner_served for p in policies),
        planner_failures=sum(p.planner_failures for p in policies),
        degraded_episodes=sum(p.degraded_episodes for p in policies),
        serving=server.stats_dict(),
    )


def chaos_matrix(
    classes: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.0, 0.45, 0.9),
    seeds: Sequence[int] = (0, 1, 2),
    config: Optional[ChaosConfig] = None,
    quick: bool = False,
    monotone_tol: float = 0.05,
) -> dict[str, Any]:
    """Sweep ``classes x rates x seeds`` and summarize goodput degradation.

    The summary marks one fault class ``monotone`` when its seed-averaged
    goodput is non-increasing in the rate up to a relative ``monotone_tol``
    (sampling noise allowance), and ``degrades`` when the highest-rate
    goodput falls strictly below the zero-rate baseline.

    ``quick`` swaps in :data:`QUICK_CONFIG` (shorter horizon) and a single
    seed — the tier-1 smoke configuration.
    """
    if classes is None:
        classes = FAULT_CLASSES
    unknown = sorted(set(classes) - set(FAULT_CLASSES))
    if unknown:
        raise FaultPlanError(f"unknown fault classes {unknown}")
    if len(rates) < 2 or sorted(rates) != list(rates):
        raise FaultPlanError(f"rates must be increasing with >= 2 points, got {rates}")
    if quick:
        config = QUICK_CONFIG if config is None else config
        seeds = tuple(seeds)[:1]
    elif config is None:
        config = ChaosConfig()

    plan_cache = PlanCache(maxsize=64)  # shared: the planner query is identical
    cells: list[ChaosCell] = []
    for fault_class in classes:
        for rate in rates:
            for seed in seeds:
                cells.append(
                    run_chaos_cell(fault_class, rate, seed, config, plan_cache)
                )

    summary: dict[str, Any] = {}
    for fault_class in classes:
        means = []
        for rate in rates:
            values = [
                c.goodput
                for c in cells
                if c.fault_class == fault_class and c.rate == rate
            ]
            means.append(float(np.mean(values)))
        monotone = all(
            means[i + 1] <= means[i] * (1.0 + monotone_tol)
            for i in range(len(means) - 1)
        )
        summary[fault_class] = {
            "rates": [float(r) for r in rates],
            "mean_goodput": means,
            "monotone": bool(monotone),
            "degrades": bool(means[-1] < means[0]),
        }
    return {
        "config": config.as_dict(),
        "rates": [float(r) for r in rates],
        "seeds": [int(s) for s in seeds],
        "monotone_tol": monotone_tol,
        "cells": [c.as_dict() for c in cells],
        "summary": summary,
    }


def report_to_json(report: dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a chaos-matrix report as an indented JSON artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
