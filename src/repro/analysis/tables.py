"""Fixed-width console tables for the benchmark harness.

Every experiment bench prints paper-style rows through this formatter so the
EXPERIMENTS.md transcripts stay uniform and diffable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "print_table"]


def _format_cell(value: object, width: int, precision: int) -> str:
    if isinstance(value, bool):
        text = "yes" if value else "no"
    elif isinstance(value, float):
        if value != value:  # NaN
            text = "nan"
        elif value == 0 or 1e-3 <= abs(value) < 10 ** (width - 2):
            text = f"{value:.{precision}f}"
        else:
            text = f"{value:.{max(1, precision - 2)}e}"
    else:
        text = str(value)
    return text.rjust(width) if isinstance(value, (int, float, bool)) else text.ljust(width)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
    min_width: int = 8,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width table string."""
    rows = [list(r) for r in rows]
    widths = [max(min_width, len(h)) for h in headers]
    rendered: list[list[str]] = []
    for row in rows:
        cells = [_format_cell(v, widths[i], precision) for i, v in enumerate(row)]
        widths = [max(w, len(c.strip()) + 1) for w, c in zip(widths, cells)]
        rendered.append(cells)
    # Second pass with final widths.
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(_format_cell(v, w, precision).rjust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
    title: str | None = None,
) -> None:
    """Print a table (flushes so pytest -s output interleaves correctly)."""
    print("\n" + format_table(headers, rows, precision=precision, title=title), flush=True)
